//! # mamps-sim — the deterministic cycle-level MPSoC simulator
//!
//! This crate plays the role of the FPGA in the paper's evaluation (§6): it
//! executes a mapped application on the generated platform — PEs walking
//! their static-order schedules, software or CA-offloaded token
//! (de-)serialization word by word, FSL FIFOs or SDM NoC connections with
//! credits, latency and SDM bandwidth — and measures the achieved
//! throughput.
//!
//! The simulator shares no code with the SDF analysis: it is an independent
//! operational implementation of the same platform semantics. The paper's
//! central claim (the SDF3 bound is a tight, conservative lower bound on
//! the measured throughput) is validated by running the simulator with
//! per-firing execution times:
//!
//! * **actual times == WCET** → measured throughput equals the bound
//!   (tightness);
//! * **actual times <= WCET** → measured throughput meets or exceeds the
//!   bound (conservativeness).
//!
//! Multi-application use-cases run through the same engine:
//! [`System::new_with_repetitions`] executes the (disconnected) union
//! graph of all admitted applications concurrently on the shared tiles,
//! with each shared PE walking the concatenated static-order rounds — the
//! platform's arbitration — so every per-application bound can be
//! validated in one run.
//!
//! ## Engines
//!
//! Two interchangeable execution engines drive the simulation
//! ([`Engine`], default [`Engine::Event`]):
//!
//! * [`event`] — a discrete-event kernel: components
//!   ([`event::Component`]) sleep until a token arrival or timer wakes
//!   them, driven by a binary-heap event queue. Interactive even on
//!   64×64-tile meshes (see the `mesh_scaling` bench).
//! * [`mod@reference`] — the original lockstep engine, kept intact as the
//!   bit-exactness oracle: both engines must produce identical traces,
//!   measurements, and error verdicts (enforced by tests, a proptest, and
//!   CI's `scripts/sim_equiv.sh`).
//!
//! ## Example
//!
//! ```
//! use mamps_mapping::flow::{map_application, MapOptions};
//! use mamps_platform::arch::Architecture;
//! use mamps_platform::interconnect::Interconnect;
//! use mamps_sdf::graph::SdfGraphBuilder;
//! use mamps_sdf::model::HomogeneousModelBuilder;
//! use mamps_sim::{System, WcetTimes};
//!
//! let mut b = SdfGraphBuilder::new("app");
//! let x = b.add_actor("x", 1);
//! let y = b.add_actor("y", 1);
//! b.add_channel("e", x, 1, y, 1);
//! let graph = b.build().unwrap();
//! let mut mb = HomogeneousModelBuilder::new("microblaze");
//! mb.actor("x", 40, 2048, 128).actor("y", 60, 2048, 128);
//! let app = mb.finish(graph, None).unwrap();
//! let arch = Architecture::homogeneous("m", 2, Interconnect::fsl()).unwrap();
//! let mapped = map_application(&app, &arch, &MapOptions::default()).unwrap();
//!
//! let times = WcetTimes::new(mapped.mapping.binding.wcet_of.clone());
//! let system = System::new(app.graph(), &mapped.mapping, &arch, &times).unwrap();
//! let measurement = system.run(100, 10_000_000).unwrap();
//! assert!(measurement.steady_throughput() >= mapped.analysis.as_f64() * (1.0 - 1e-9));
//! ```

pub mod event;
pub mod exec_time;
pub mod fifo;
pub mod noc_sim;
pub mod processor;
pub mod reference;
pub mod system;
pub mod trace;

pub use exec_time::{FiringTimes, TraceTimes, WcetTimes};
pub use noc_sim::Connection;
pub use system::{Engine, System};
pub use trace::{
    render_gantt, render_gantt_labeled, render_trace, AppAttribution, Measurement, SimError,
    TraceEvent,
};
