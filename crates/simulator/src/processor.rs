//! Workers: the active entities of the simulated platform.
//!
//! * A **PE worker** per tile walks the tile's static-order schedule round
//!   (the lookup-table scheduler of paper §6.3), blocking on tokens, buffer
//!   space and connection credits exactly like the generated wrapper code.
//! * **CA workers** (on communication-assist tiles) and **NI workers** (on
//!   hardware-IP tiles) run the word loops of one channel endpoint
//!   autonomously, concurrently with the PE.
//! * An **IP worker** fires a hardware actor whenever it is ready (no
//!   schedule — the actor is its own tile).

use mamps_sdf::graph::{ActorId, ChannelId};

/// What a busy worker is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Executing one firing of an actor.
    Fire {
        /// The actor being fired.
        actor: ActorId,
    },
    /// Serializing one word of a channel into the interconnect.
    SendWord {
        /// The channel being served.
        channel: ChannelId,
    },
    /// De-serializing one word of a channel from the interconnect.
    RecvWord {
        /// The channel being served.
        channel: ChannelId,
    },
}

/// The flavour of a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerKind {
    /// The processing element of a tile, executing its schedule.
    Pe {
        /// Tile index.
        tile: usize,
    },
    /// A CA/NI engine serializing one channel's tokens.
    EngineSend {
        /// The channel served.
        channel: ChannelId,
    },
    /// A CA/NI engine de-serializing one channel's tokens.
    EngineRecv {
        /// The channel served.
        channel: ChannelId,
    },
    /// A hardware-IP actor firing autonomously.
    Ip {
        /// The actor.
        actor: ActorId,
    },
}

/// Runtime state of one worker.
#[derive(Debug, Clone)]
pub struct Worker {
    /// The worker flavour.
    pub kind: WorkerKind,
    /// Current operation, when busy.
    pub op: Option<Op>,
    /// Start time of the current operation.
    pub op_started: u64,
    /// Completion time of the current operation.
    pub busy_until: u64,
    /// Schedule position (PE workers only): index into the round.
    pub pc: usize,
    /// Units (firings or words) completed within the current entry.
    pub done_in_entry: u64,
    /// Total busy cycles (utilization accounting).
    pub busy_cycles: u64,
}

impl Worker {
    /// Creates an idle worker.
    pub fn new(kind: WorkerKind) -> Worker {
        Worker {
            kind,
            op: None,
            op_started: 0,
            busy_until: 0,
            pc: 0,
            done_in_entry: 0,
            busy_cycles: 0,
        }
    }

    /// True when the worker can accept a new operation.
    pub fn is_idle(&self) -> bool {
        self.op.is_none()
    }

    /// The completion time of the current operation, if busy — the
    /// worker's contribution to the event kernel's queue (see
    /// [`crate::event::Component`]).
    pub fn next_tick(&self) -> Option<u64> {
        self.op.map(|_| self.busy_until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_start_idle() {
        let w = Worker::new(WorkerKind::Pe { tile: 0 });
        assert!(w.is_idle());
        assert_eq!(w.pc, 0);
        assert_eq!(w.busy_cycles, 0);
    }

    #[test]
    fn op_equality() {
        assert_eq!(
            Op::Fire { actor: ActorId(1) },
            Op::Fire { actor: ActorId(1) }
        );
        assert_ne!(
            Op::SendWord {
                channel: ChannelId(0)
            },
            Op::RecvWord {
                channel: ChannelId(0)
            }
        );
    }
}
