//! Measurement results, execution traces, and simulator errors.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::processor::{Op, WorkerKind};

/// One completed operation of a worker, for trace/Gantt output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The worker that executed the operation.
    pub worker: WorkerKind,
    /// The operation.
    pub op: Op,
    /// Start cycle.
    pub start: u64,
    /// End cycle (exclusive).
    pub end: u64,
}

/// Maps the actors and channels of a (union) graph back to the
/// applications they belong to, so multi-application Gantt charts can
/// attribute every row. Built per interference group by
/// `mamps_core::flow::MultiFlowResult::group_attribution` from the
/// member spans of the combined graph.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AppAttribution {
    /// Application names, indexed by application id.
    pub names: Vec<String>,
    /// Application id of each actor of the (union) graph.
    pub app_of_actor: Vec<usize>,
    /// Application id of each channel of the (union) graph.
    pub app_of_channel: Vec<usize>,
}

impl AppAttribution {
    /// The application an event belongs to, read off the operation (the
    /// worker alone is not enough: a shared tile's PE fires actors of
    /// several applications).
    pub fn app_of(&self, event: &TraceEvent) -> Option<usize> {
        match event.op {
            Op::Fire { actor } => self.app_of_actor.get(actor.0).copied(),
            Op::SendWord { channel } | Op::RecvWord { channel } => {
                self.app_of_channel.get(channel.0).copied()
            }
        }
    }

    /// The application's name, or `"?"` for an out-of-range id.
    pub fn name(&self, app: usize) -> &str {
        self.names.get(app).map(String::as_str).unwrap_or("?")
    }
}

/// Renders trace events up to `until_cycle` as a text Gantt chart with
/// `width` columns; each row is one worker.
pub fn render_gantt(events: &[TraceEvent], until_cycle: u64, width: usize) -> String {
    render_gantt_labeled(events, until_cycle, width, None)
}

/// Like [`render_gantt`], but with per-application row attribution: a
/// worker executing operations of several applications (a PE of a shared
/// tile in a multi-application use-case) gets one row *per application*,
/// labelled `PE tile0 [app]` — which is what makes inter-application
/// contention on a shared tile visible at a glance.
pub fn render_gantt_labeled(
    events: &[TraceEvent],
    until_cycle: u64,
    width: usize,
    apps: Option<&AppAttribution>,
) -> String {
    // Row identity: worker plus (when attributing) the application of the
    // event's operation, in first-appearance order.
    let mut rows: Vec<(WorkerKind, Option<usize>)> = Vec::new();
    for e in events {
        let key = (e.worker, apps.and_then(|a| a.app_of(e)));
        if !rows.contains(&key) {
            rows.push(key);
        }
    }
    let until = until_cycle.max(1);
    let label = |&(w, app): &(WorkerKind, Option<usize>)| {
        let base = match w {
            WorkerKind::Pe { tile } => format!("PE tile{tile}"),
            WorkerKind::EngineSend { channel } => format!("CA snd c{}", channel.0),
            WorkerKind::EngineRecv { channel } => format!("CA rcv c{}", channel.0),
            WorkerKind::Ip { actor } => format!("IP {actor}"),
        };
        match (app, apps) {
            (Some(i), Some(a)) => format!("{base} [{}]", a.name(i)),
            _ => base,
        }
    };
    let glyph = |op: Op| match op {
        Op::Fire { .. } => '#',
        Op::SendWord { .. } => '>',
        Op::RecvWord { .. } => '<',
    };
    let label_width = rows
        .iter()
        .map(|r| label(r).len())
        .max()
        .unwrap_or(0)
        .max(12);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "gantt: cycles 0..{until} ({} cycles/column; # fire, > send, < recv)",
        until.div_ceil(width as u64)
    );
    for key in &rows {
        let mut row = vec![' '; width];
        for e in events.iter().filter(|e| {
            e.worker == key.0 && e.start < until && apps.and_then(|a| a.app_of(e)) == key.1
        }) {
            let c0 = (e.start * width as u64 / until) as usize;
            let c1 = ((e.end.min(until)) * width as u64 / until) as usize;
            for cell in row.iter_mut().take((c1 + 1).min(width)).skip(c0) {
                *cell = glyph(e.op);
            }
        }
        let _ = writeln!(
            out,
            "{:<label_width$} |{}|",
            label(key),
            row.iter().collect::<String>()
        );
    }
    out
}

/// Renders events as plain text, one line per completed operation in
/// completion order: `start..end  worker  op`. Unlike the Gantt chart
/// this loses no events to column resolution, which makes it the format
/// of choice for byte-for-byte engine comparison (`scripts/sim_equiv.sh`
/// diffs it across the event and lockstep engines).
pub fn render_trace(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let worker = match e.worker {
            WorkerKind::Pe { tile } => format!("PE tile{tile}"),
            WorkerKind::EngineSend { channel } => format!("CA snd c{}", channel.0),
            WorkerKind::EngineRecv { channel } => format!("CA rcv c{}", channel.0),
            WorkerKind::Ip { actor } => format!("IP a{}", actor.0),
        };
        let op = match e.op {
            Op::Fire { actor } => format!("fire a{}", actor.0),
            Op::SendWord { channel } => format!("send c{}", channel.0),
            Op::RecvWord { channel } => format!("recv c{}", channel.0),
        };
        let _ = writeln!(out, "{:>10}..{:<10} {worker:<12} {op}", e.start, e.end);
    }
    out
}

/// Errors of the simulated platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// System construction failed; the message explains the mismatch.
    Build(String),
    /// Execution stalled before reaching the iteration target.
    Deadlock(String),
    /// The cycle budget elapsed before the iteration target.
    CycleLimit(u64),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Build(m) => write!(f, "cannot build system: {m}"),
            SimError::Deadlock(m) => write!(f, "simulated platform deadlocked: {m}"),
            SimError::CycleLimit(c) => write!(f, "cycle limit {c} reached"),
        }
    }
}

impl Error for SimError {}

/// The outcome of a simulation run.
///
/// Derives `PartialEq`/`Eq` so engine-equivalence tests can assert the
/// event kernel and the lockstep reference agree on every field exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measurement {
    /// Completion time (cycle) of each graph iteration.
    pub iteration_times: Vec<u64>,
    /// Final simulation time.
    pub total_cycles: u64,
    /// Completed firings per actor.
    pub firings: Vec<u64>,
    /// Busy cycles per worker.
    pub worker_busy: Vec<(WorkerKind, u64)>,
    /// Platform clock in MHz (for unit conversion in reports).
    pub clock_mhz: u64,
}

impl Measurement {
    /// Assembles a measurement.
    pub fn new(
        iteration_times: Vec<u64>,
        total_cycles: u64,
        firings: Vec<u64>,
        worker_busy: Vec<(WorkerKind, u64)>,
        clock_mhz: u64,
    ) -> Measurement {
        Measurement {
            iteration_times,
            total_cycles,
            firings,
            worker_busy,
            clock_mhz,
        }
    }

    /// Long-term average throughput in iterations per cycle, discarding the
    /// first 10 % of iterations as warm-up (the paper's throughput is
    /// defined as a long-term average precisely to exclude initialization
    /// effects, §5).
    pub fn steady_throughput(&self) -> f64 {
        let n = self.iteration_times.len();
        if n < 2 {
            return 0.0;
        }
        let k = n / 10;
        let t0 = self.iteration_times[k];
        let t1 = self.iteration_times[n - 1];
        if t1 == t0 {
            return 0.0;
        }
        (n - 1 - k) as f64 / (t1 - t0) as f64
    }

    /// Worst-case window throughput: the minimum over all consecutive
    /// iteration gaps in the steady phase (a conservative "measured
    /// worst-case" figure).
    pub fn worst_window_throughput(&self) -> f64 {
        let n = self.iteration_times.len();
        if n < 2 {
            return 0.0;
        }
        let k = n / 10;
        let max_gap = self.iteration_times[k.max(1)..]
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0);
        if max_gap == 0 {
            0.0
        } else {
            1.0 / max_gap as f64
        }
    }

    /// Throughput in iterations per MHz per second: iterations/cycle x 1e6
    /// (the unit of the paper's Fig. 6, "MCUs per MHz per second").
    pub fn throughput_per_mhz(&self) -> f64 {
        self.steady_throughput() * 1e6
    }

    /// Latency of the first complete iteration in cycles (the transient
    /// the paper's long-term-average throughput definition excludes, §5).
    pub fn first_iteration_latency(&self) -> Option<u64> {
        self.iteration_times.first().copied()
    }

    /// Average cycles per iteration in the steady phase.
    pub fn cycles_per_iteration(&self) -> f64 {
        let t = self.steady_throughput();
        if t == 0.0 {
            f64::INFINITY
        } else {
            1.0 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(times: Vec<u64>) -> Measurement {
        Measurement::new(times, 1000, vec![], vec![], 100)
    }

    #[test]
    fn steady_throughput_uniform() {
        // Iterations every 10 cycles.
        let m = meas((1..=100).map(|i| i * 10).collect());
        assert!((m.steady_throughput() - 0.1).abs() < 1e-9);
        assert!((m.cycles_per_iteration() - 10.0).abs() < 1e-6);
        assert!((m.throughput_per_mhz() - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn warmup_discarded() {
        // Slow start (gap 100), then steady gap 10.
        let mut t = vec![100u64];
        for i in 1..100 {
            t.push(100 + i * 10);
        }
        let m = meas(t);
        assert!((m.steady_throughput() - 0.1).abs() < 0.01);
    }

    #[test]
    fn worst_window_sees_hiccup() {
        let mut t: Vec<u64> = (1..=50).map(|i| i * 10).collect();
        // Insert a 50-cycle gap in the steady phase.
        t.push(550);
        for i in 1..50 {
            t.push(550 + i * 10);
        }
        let m = meas(t);
        assert!(m.worst_window_throughput() <= 1.0 / 50.0 + 1e-9);
        assert!(m.worst_window_throughput() > 0.0);
    }

    #[test]
    fn first_iteration_latency() {
        assert_eq!(meas(vec![42, 52]).first_iteration_latency(), Some(42));
        assert_eq!(meas(vec![]).first_iteration_latency(), None);
    }

    #[test]
    fn degenerate_measurements() {
        assert_eq!(meas(vec![]).steady_throughput(), 0.0);
        assert_eq!(meas(vec![5]).steady_throughput(), 0.0);
        assert_eq!(meas(vec![]).worst_window_throughput(), 0.0);
        assert!(meas(vec![]).cycles_per_iteration().is_infinite());
    }

    #[test]
    fn error_display() {
        assert!(SimError::Deadlock("x".into()).to_string().contains("x"));
        assert!(SimError::CycleLimit(7).to_string().contains('7'));
        assert!(SimError::Build("y".into()).to_string().contains("y"));
    }
}

#[cfg(test)]
mod gantt_tests {
    use super::*;
    use mamps_sdf::graph::ActorId;

    #[test]
    fn gantt_renders_rows_and_glyphs() {
        let events = vec![
            TraceEvent {
                worker: WorkerKind::Pe { tile: 0 },
                op: Op::Fire { actor: ActorId(0) },
                start: 0,
                end: 50,
            },
            TraceEvent {
                worker: WorkerKind::Pe { tile: 0 },
                op: Op::SendWord {
                    channel: mamps_sdf::graph::ChannelId(0),
                },
                start: 50,
                end: 60,
            },
            TraceEvent {
                worker: WorkerKind::Pe { tile: 1 },
                op: Op::RecvWord {
                    channel: mamps_sdf::graph::ChannelId(0),
                },
                start: 60,
                end: 70,
            },
        ];
        let g = render_gantt(&events, 100, 50);
        assert!(g.contains("PE tile0"));
        assert!(g.contains("PE tile1"));
        assert!(g.contains('#'));
        assert!(g.contains('>'));
        assert!(g.contains('<'));
    }

    #[test]
    fn gantt_empty_events() {
        let g = render_gantt(&[], 10, 20);
        assert!(g.starts_with("gantt:"));
    }

    #[test]
    fn gantt_splits_shared_tile_rows_per_application() {
        // One PE firing actors of two applications in alternation: with
        // attribution the tile gets one labelled row per application.
        let fire = |actor: usize, start: u64| TraceEvent {
            worker: WorkerKind::Pe { tile: 0 },
            op: Op::Fire {
                actor: ActorId(actor),
            },
            start,
            end: start + 10,
        };
        let events = vec![fire(0, 0), fire(1, 10), fire(0, 20), fire(1, 30)];
        let apps = AppAttribution {
            names: vec!["alpha".into(), "beta".into()],
            app_of_actor: vec![0, 1],
            app_of_channel: vec![],
        };
        let labeled = render_gantt_labeled(&events, 40, 40, Some(&apps));
        assert!(labeled.contains("PE tile0 [alpha]"), "{labeled}");
        assert!(labeled.contains("PE tile0 [beta]"), "{labeled}");
        // The two rows partition the tile's events: each shows only its
        // own firings, so alpha's row is half '#', half blank.
        let alpha_row = labeled
            .lines()
            .find(|l| l.contains("[alpha]"))
            .unwrap()
            .rsplit('|')
            .nth(1)
            .unwrap();
        assert!(alpha_row.contains('#'));
        assert!(alpha_row.contains(' '));
        // Without attribution the old single-row rendering is unchanged.
        let plain = render_gantt(&events, 40, 40);
        assert_eq!(plain.lines().count(), 2, "{plain}");
        assert!(plain.contains("PE tile0"));
        assert!(!plain.contains('['));
    }

    #[test]
    fn attribution_resolves_ops_to_apps() {
        let apps = AppAttribution {
            names: vec!["a".into(), "b".into()],
            app_of_actor: vec![0, 1],
            app_of_channel: vec![1],
        };
        let ev = |op: Op| TraceEvent {
            worker: WorkerKind::Pe { tile: 0 },
            op,
            start: 0,
            end: 1,
        };
        assert_eq!(apps.app_of(&ev(Op::Fire { actor: ActorId(1) })), Some(1));
        assert_eq!(
            apps.app_of(&ev(Op::SendWord {
                channel: mamps_sdf::graph::ChannelId(0)
            })),
            Some(1)
        );
        assert_eq!(apps.app_of(&ev(Op::Fire { actor: ActorId(9) })), None);
        assert_eq!(apps.name(0), "a");
        assert_eq!(apps.name(7), "?");
    }
}
