//! Connection state: the word path from sending NI to receiving NI.
//!
//! Mirrors the latency-rate model of Fig. 4 operationally: a word pushed at
//! time `t` occupies one of `w` pipeline slots of the latency stage for
//! `latency` cycles, then passes the serial rate stage (`cycles_per_word`
//! each, FIFO order), and is *delivered*: it enters the receiving NI queue
//! and its in-connection credit returns to the sender. Both FSL links and
//! SDM NoC connections use this shape, with parameters from
//! `CommParams`.

use mamps_platform::interconnect::CommParams;

/// One programmed connection of the interconnect.
#[derive(Debug, Clone)]
pub struct Connection {
    /// Remaining in-connection credits (initially `alpha_n` words).
    pub credits: u64,
    /// Words delivered to the receiving NI, not yet de-serialized.
    pub delivered: u64,
    /// Latency-stage completion times of the last `w` words (FIFO); word
    /// `k` can enter the stage only after word `k - w` left it.
    lat_done_history: std::collections::VecDeque<u64>,
    /// Completion time of the last word through the rate stage.
    last_rate_done: u64,
    params: CommParams,
}

impl Connection {
    /// Creates an idle connection with full credits.
    pub fn new(params: CommParams) -> Connection {
        Connection {
            credits: params.alpha_n,
            delivered: 0,
            lat_done_history: std::collections::VecDeque::new(),
            last_rate_done: 0,
            params,
        }
    }

    /// The connection parameters.
    pub fn params(&self) -> &CommParams {
        &self.params
    }

    /// Pushes one word at `now` (the sender's serialization just finished)
    /// and returns its *delivery time*: when it reaches the receiving NI and
    /// the credit returns.
    ///
    /// The caller must have acquired a credit beforehand (at serialization
    /// start).
    ///
    /// Delivery times of one connection are non-decreasing across calls
    /// (the serial rate stage is FIFO), which is what lets the event
    /// kernel's link component keep its in-flight words in a plain queue
    /// instead of a priority queue.
    pub fn push_word(&mut self, now: u64) -> u64 {
        let w = self.params.w.max(1) as usize;
        // Latency stage: word k starts once word k-w has left the stage.
        let start = if self.lat_done_history.len() < w {
            now
        } else {
            let gate = self.lat_done_history.pop_front().expect("len checked");
            now.max(gate)
        };
        let lat_done = start + self.params.latency;
        self.lat_done_history.push_back(lat_done);
        // Rate stage: serial, FIFO.
        let rate_start = lat_done.max(self.last_rate_done);
        let rate_done = rate_start + self.params.cycles_per_word;
        debug_assert!(
            rate_done >= self.last_rate_done,
            "per-connection delivery times must be monotone"
        );
        self.last_rate_done = rate_done;
        rate_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(w: u64, latency: u64, cpw: u64, alpha_n: u64) -> CommParams {
        CommParams {
            w,
            alpha_n,
            latency,
            cycles_per_word: cpw,
        }
    }

    #[test]
    fn single_word_latency_plus_rate() {
        let mut c = Connection::new(params(1, 3, 2, 16));
        assert_eq!(c.push_word(10), 15); // 10 + 3 + 2
    }

    #[test]
    fn rate_stage_serializes() {
        let mut c = Connection::new(params(4, 0, 5, 16));
        assert_eq!(c.push_word(0), 5);
        assert_eq!(c.push_word(0), 10);
        assert_eq!(c.push_word(0), 15);
    }

    #[test]
    fn latency_pipelines_up_to_w() {
        let mut c = Connection::new(params(2, 10, 1, 16));
        // Two words overlap in the latency stage.
        assert_eq!(c.push_word(0), 11);
        assert_eq!(c.push_word(0), 12);
        // The third waits for a slot (earliest frees at 10).
        let t3 = c.push_word(0);
        assert!(t3 >= 20, "third word must wait for a latency slot: {t3}");
    }

    #[test]
    fn fsl_like_back_to_back() {
        // FSL: w=1, latency 1, 1 cycle/word => sustained 1 word/cycle after
        // the pipeline fills... with w=1 the latency stage serializes.
        let mut c = Connection::new(params(1, 1, 1, 16));
        let d1 = c.push_word(0);
        let d2 = c.push_word(0);
        assert_eq!(d1, 2);
        assert!(d2 >= 3);
    }

    #[test]
    fn credits_are_caller_managed() {
        let c = Connection::new(params(1, 1, 1, 7));
        assert_eq!(c.credits, 7);
        assert_eq!(c.delivered, 0);
    }
}
