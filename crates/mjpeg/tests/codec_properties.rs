//! Property tests for the MJPEG codec: generated streams of every content
//! class and geometry decode without error, reconstruct the right frame
//! count, and never exceed the analytic WCETs.

use proptest::prelude::*;

use mamps_mjpeg::actors::decode_stream;
use mamps_mjpeg::cost;
use mamps_mjpeg::encoder::{encode_sequence, Content, StreamConfig};

fn any_content() -> impl Strategy<Value = Content> {
    prop_oneof![
        Just(Content::Flat),
        Just(Content::Gradient),
        Just(Content::Photo),
        Just(Content::Detail),
        Just(Content::Text),
        Just(Content::SyntheticRandom),
    ]
}

fn any_config() -> impl Strategy<Value = StreamConfig> {
    (
        prop_oneof![Just(1u8), Just(2), Just(4)],
        1u16..4, // MCU columns
        1u16..4, // MCU rows
        prop_oneof![Just(30u8), Just(50), Just(75), Just(95)],
        1u16..3, // frames
    )
        .prop_map(|(y_blocks, mcols, mrows, quality, frames)| {
            let (mw, mh) = match y_blocks {
                1 => (8u16, 8u16),
                2 => (16, 8),
                _ => (16, 16),
            };
            StreamConfig {
                width: mcols * mw,
                height: mrows * mh,
                quality,
                y_blocks,
                frames,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_generated_stream_decodes(
        cfg in any_config(),
        content in any_content(),
        seed in 0u64..1000,
    ) {
        let stream = encode_sequence(&cfg, content, seed);
        let res = decode_stream(&stream).unwrap();
        prop_assert_eq!(res.frames.len(), cfg.frames as usize);
        prop_assert_eq!(res.profile.vld.len(), cfg.total_mcus());
        prop_assert_eq!(
            res.profile.iqzz.len(),
            cfg.total_mcus() * cost::MAX_BLOCKS_PER_MCU as usize
        );
        for f in &res.frames {
            prop_assert_eq!(f.width, cfg.width as usize);
            prop_assert_eq!(f.height, cfg.height as usize);
        }
    }

    #[test]
    fn costs_never_exceed_wcets(
        cfg in any_config(),
        content in any_content(),
        seed in 0u64..1000,
    ) {
        let stream = encode_sequence(&cfg, content, seed);
        let res = decode_stream(&stream).unwrap();
        let px = cfg.mcu_pixels() as u64;
        let wcet_vld = cost::wcet_vld(cfg.blocks_per_mcu() as u64);
        for &c in &res.profile.vld {
            prop_assert!(c <= wcet_vld, "VLD {c} > {wcet_vld}");
        }
        for &c in &res.profile.iqzz {
            prop_assert!(c <= cost::wcet_iqzz());
        }
        for &c in &res.profile.idct {
            prop_assert!(c <= cost::wcet_idct());
        }
        for &c in &res.profile.cc {
            prop_assert!(c <= cost::wcet_cc(px));
        }
        for &c in &res.profile.raster {
            prop_assert!(c <= cost::wcet_raster(px));
        }
    }

    #[test]
    fn truncated_streams_never_panic(
        cut in 13usize..200,
        seed in 0u64..50,
    ) {
        let cfg = StreamConfig::small();
        let mut stream = encode_sequence(&cfg, Content::Photo, seed);
        stream.truncate(cut.min(stream.len()));
        // Must return an error or a partial success, never panic.
        let _ = decode_stream(&stream);
    }

    #[test]
    fn corrupted_bytes_never_panic(
        pos in 12usize..500,
        byte in 0u8..=255,
        seed in 0u64..50,
    ) {
        let cfg = StreamConfig::small();
        let mut stream = encode_sequence(&cfg, Content::Detail, seed);
        if pos < stream.len() {
            stream[pos] = byte;
        }
        let _ = decode_stream(&stream);
    }
}
