//! Integer YCbCr <-> RGB conversion (ITU-R BT.601 full range, fixed point).

/// Converts one RGB pixel to YCbCr (all components 0..=255).
pub fn rgb_to_ycbcr(r: u8, g: u8, b: u8) -> (u8, u8, u8) {
    let (r, g, b) = (r as i32, g as i32, b as i32);
    let y = (77 * r + 150 * g + 29 * b + 128) >> 8;
    let cb = ((-43 * r - 85 * g + 128 * b + 128) >> 8) + 128;
    let cr = ((128 * r - 107 * g - 21 * b + 128) >> 8) + 128;
    (
        y.clamp(0, 255) as u8,
        cb.clamp(0, 255) as u8,
        cr.clamp(0, 255) as u8,
    )
}

/// Converts one YCbCr pixel back to RGB.
pub fn ycbcr_to_rgb(y: u8, cb: u8, cr: u8) -> (u8, u8, u8) {
    let y = y as i32;
    let cb = cb as i32 - 128;
    let cr = cr as i32 - 128;
    let r = y + ((359 * cr + 128) >> 8);
    let g = y - ((88 * cb + 183 * cr + 128) >> 8);
    let b = y + ((454 * cb + 128) >> 8);
    (
        r.clamp(0, 255) as u8,
        g.clamp(0, 255) as u8,
        b.clamp(0, 255) as u8,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grey_is_fixed_point() {
        for v in [0u8, 64, 128, 200, 255] {
            let (y, cb, cr) = rgb_to_ycbcr(v, v, v);
            assert!((y as i32 - v as i32).abs() <= 1);
            assert!((cb as i32 - 128).abs() <= 1);
            assert!((cr as i32 - 128).abs() <= 1);
        }
    }

    #[test]
    fn roundtrip_error_bounded() {
        for r in (0..=255).step_by(17) {
            for g in (0..=255).step_by(19) {
                for b in (0..=255).step_by(23) {
                    let (y, cb, cr) = rgb_to_ycbcr(r, g, b);
                    let (r2, g2, b2) = ycbcr_to_rgb(y, cb, cr);
                    assert!((r as i32 - r2 as i32).abs() <= 3);
                    assert!((g as i32 - g2 as i32).abs() <= 3);
                    assert!((b as i32 - b2 as i32).abs() <= 3);
                }
            }
        }
    }

    #[test]
    fn primaries_have_expected_chroma() {
        let (_, cb_r, cr_r) = rgb_to_ycbcr(255, 0, 0);
        assert!(cr_r > 200, "red has high Cr");
        assert!(cb_r < 128);
        let (_, cb_b, _) = rgb_to_ycbcr(0, 0, 255);
        assert!(cb_b > 200, "blue has high Cb");
    }
}
