//! MSB-first bit-level reader and writer for the MJPEG-like bitstream.

/// Writes bits MSB-first into a byte vector.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the current (last) byte.
    bit_pos: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Appends the `count` least-significant bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn put_bits(&mut self, value: u32, count: u8) {
        assert!(count <= 32, "at most 32 bits per call");
        for i in (0..count).rev() {
            let bit = (value >> i) & 1;
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.len() - 1;
            self.bytes[last] |= (bit as u8) << (7 - self.bit_pos);
            self.bit_pos = (self.bit_pos + 1) % 8;
        }
    }

    /// Pads with zero bits to a byte boundary and returns the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit_pos as usize
        }
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit; `None` at end of stream.
    pub fn get_bit(&mut self) -> Option<u8> {
        let byte = self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `count` bits MSB-first; `None` if the stream ends early.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn get_bits(&mut self, count: u8) -> Option<u32> {
        assert!(count <= 32, "at most 32 bits per call");
        let mut v = 0u32;
        for _ in 0..count {
            v = (v << 1) | self.get_bit()? as u32;
        }
        Some(v)
    }

    /// Bits consumed so far.
    pub fn bits_read(&self) -> usize {
        self.pos
    }

    /// True when all bits are consumed (ignoring byte padding).
    pub fn is_empty(&self) -> bool {
        self.pos >= self.bytes.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.put_bits(0xFF, 8);
        w.put_bits(0, 1);
        w.put_bits(0x12345, 20);
        let len = w.bit_len();
        assert_eq!(len, 32);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(3), Some(0b101));
        assert_eq!(r.get_bits(8), Some(0xFF));
        assert_eq!(r.get_bits(1), Some(0));
        assert_eq!(r.get_bits(20), Some(0x12345));
        assert_eq!(r.bits_read(), 32);
    }

    #[test]
    fn zero_count_is_noop() {
        let mut w = BitWriter::new();
        w.put_bits(0xFFFF, 0);
        assert_eq!(w.bit_len(), 0);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(0), Some(0));
    }

    #[test]
    fn end_of_stream() {
        let mut w = BitWriter::new();
        w.put_bits(0b11, 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(8), Some(0b1100_0000)); // padded byte readable
        assert_eq!(r.get_bit(), None);
        assert!(r.is_empty());
    }

    #[test]
    fn single_bits() {
        let mut w = BitWriter::new();
        for b in [1u32, 0, 1, 1, 0, 0, 1, 0, 1] {
            w.put_bits(b, 1);
        }
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for b in [1u8, 0, 1, 1, 0, 0, 1, 0, 1] {
            assert_eq!(r.get_bit(), Some(b));
        }
    }
}
