//! Integer 8x8 forward and inverse DCT (separable, fixed-point).
//!
//! A straightforward 13-bit fixed-point implementation of the type-II DCT
//! and its inverse, accurate enough that quantize(fdct(idct(x))) is stable
//! — which is all an MJPEG codec needs.

const N: usize = 8;
const FRAC_BITS: i64 = 13;

/// Cosine table in fixed point: `C[u][x] = cos((2x+1) u pi / 16) << 13`.
fn cos_table() -> [[i64; N]; N] {
    let mut t = [[0i64; N]; N];
    for (u, row) in t.iter_mut().enumerate() {
        for (x, v) in row.iter_mut().enumerate() {
            let angle = ((2 * x + 1) as f64) * (u as f64) * std::f64::consts::PI / 16.0;
            *v = (angle.cos() * (1i64 << FRAC_BITS) as f64).round() as i64;
        }
    }
    t
}

/// Rounding fixed-point rescale by `FRAC_BITS`.
fn rescale(x: i64) -> i64 {
    (x + (1 << (FRAC_BITS - 1))) >> FRAC_BITS
}

fn alpha(u: usize) -> f64 {
    if u == 0 {
        (1.0f64 / N as f64).sqrt()
    } else {
        (2.0f64 / N as f64).sqrt()
    }
}

/// Scale factors `alpha(u) * alpha(v)` in fixed point.
fn alpha_table() -> [[i64; N]; N] {
    let mut t = [[0i64; N]; N];
    for (u, row) in t.iter_mut().enumerate() {
        for (v, val) in row.iter_mut().enumerate() {
            *val = ((alpha(u) * alpha(v)) * (1i64 << FRAC_BITS) as f64).round() as i64;
        }
    }
    t
}

/// Forward 8x8 DCT of pixel-domain samples (centred around 0, i.e. the
/// caller subtracts 128 from unsigned pixels first).
pub fn fdct(block: &[i16; 64]) -> [i16; 64] {
    let cos = cos_table();
    let al = alpha_table();
    let mut out = [0i16; 64];
    for u in 0..N {
        for v in 0..N {
            let mut acc: i64 = 0;
            for x in 0..N {
                for y in 0..N {
                    // (pixel * cos) * cos, rescaled to 2^FRAC_BITS.
                    let t = block[x * N + y] as i64 * cos[u][x];
                    acc += rescale(t * cos[v][y]);
                }
            }
            let scaled = rescale(acc * al[u][v]);
            out[u * N + v] = rescale(scaled).clamp(-32768, 32767) as i16;
        }
    }
    out
}

/// Inverse 8x8 DCT back to (centred) pixel-domain samples.
pub fn idct(block: &[i16; 64]) -> [i16; 64] {
    let cos = cos_table();
    let al = alpha_table();
    let mut out = [0i16; 64];
    for x in 0..N {
        for y in 0..N {
            let mut acc: i64 = 0;
            for u in 0..N {
                for v in 0..N {
                    // alpha * F (scale 2^13), times both cosines; one
                    // rescale in between keeps everything in i64 range.
                    let c = al[u][v] * block[u * N + v] as i64;
                    let t = rescale(c * cos[u][x]);
                    acc += t * cos[v][y];
                }
            }
            out[x * N + y] = rescale(rescale(acc)).clamp(-32768, 32767) as i16;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_only_block() {
        // A flat block transforms to a single DC coefficient.
        let flat = [64i16; 64];
        let f = fdct(&flat);
        assert!(f[0] > 0, "DC must be positive: {}", f[0]);
        for (i, &c) in f.iter().enumerate().skip(1) {
            assert!(c.abs() <= 1, "AC coefficient {i} = {c} should be ~0");
        }
    }

    #[test]
    fn roundtrip_accuracy() {
        let mut block = [0i16; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (((i * 37) % 256) as i16) - 128;
        }
        let rec = idct(&fdct(&block));
        for (a, b) in block.iter().zip(rec.iter()) {
            assert!((a - b).abs() <= 2, "roundtrip error too large: {a} vs {b}");
        }
    }

    #[test]
    fn linearity() {
        let mut x = [0i16; 64];
        x[9] = 100;
        let fx = fdct(&x);
        let mut x2 = [0i16; 64];
        x2[9] = 200;
        let fx2 = fdct(&x2);
        for (a, b) in fx.iter().zip(fx2.iter()) {
            assert!((2 * a - b).abs() <= 3, "2*{a} vs {b}");
        }
    }
}
