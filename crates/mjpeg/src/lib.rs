//! # mamps-mjpeg — the MJPEG decoder case study (paper §6, Fig. 5)
//!
//! A complete MJPEG-like codec built for the evaluation of the MAMPS design
//! flow: bitstream I/O, Huffman coding, quantization, zig-zag, integer
//! DCT/IDCT, colour conversion, a sequence generator covering the paper's
//! five real-life test sequences plus the synthetic worst-case sequence,
//! and the five decoder actors (`VLD`, `IQZZ`, `IDCT`, `CC`, `Raster`)
//! instrumented with a deterministic cycle-cost model.
//!
//! The actors do real work (the decoder reconstructs frames, verified
//! against the encoder input), and every operation charges cycles through
//! [`cost`], so per-firing *actual* execution times and analytic *WCETs*
//! come from the same constants with `actual <= WCET` guaranteed — the
//! property underpinning the flow's conservative throughput bound.
//!
//! ## Example
//!
//! ```
//! use mamps_mjpeg::encoder::{encode_sequence, Content, StreamConfig};
//! use mamps_mjpeg::actors::decode_stream;
//!
//! let cfg = StreamConfig::small();
//! let stream = encode_sequence(&cfg, Content::Photo, 42);
//! let result = decode_stream(&stream).unwrap();
//! assert_eq!(result.frames.len(), cfg.frames as usize);
//! // Per-firing execution times for the platform simulator:
//! assert_eq!(result.profile.vld.len(), cfg.total_mcus());
//! ```

pub mod actors;
pub mod app_model;
pub mod bitstream;
pub mod color;
pub mod cost;
pub mod dct;
pub mod encoder;
pub mod huffman;
pub mod quant;
pub mod sequences;
pub mod zigzag;

pub use actors::{decode_stream, CostProfile, DecodeError, DecodeResult};
pub use app_model::{fig5_graph, mjpeg_application};
pub use encoder::{encode_sequence, Content, Frame, StreamConfig};
pub use sequences::{profile_sequence, synthetic, test_set, TestSequence};
