//! MJPEG-like stream format and encoder / test-sequence generator.
//!
//! The format is a simplified baseline-JPEG relative: a byte-aligned stream
//! header (dimensions, quality, sampling), then per frame the MCUs in
//! raster order, each MCU holding its blocks Huffman-coded with DC
//! prediction and AC run-length coding. The shared Huffman tables come from
//! [`crate::huffman`]; quantization from [`crate::quant`].
//!
//! Six content classes generate the evaluation material of paper §6: five
//! "real-life" classes with decreasing smoothness, and the synthetic
//! worst-case class that codes dense random coefficients directly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bitstream::BitWriter;
use crate::color::rgb_to_ycbcr;
use crate::dct::fdct;
use crate::huffman::{ac_code, dc_code, magnitude_bits, size_category, EOB, ZRL};
use crate::quant::{quantize, scaled_table, CHROMA_BASE, LUMA_BASE};
use crate::zigzag::to_zigzag;

/// Stream configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Frame width in pixels (multiple of the MCU width).
    pub width: u16,
    /// Frame height in pixels (multiple of the MCU height).
    pub height: u16,
    /// JPEG-style quality factor (1..=100).
    pub quality: u8,
    /// Luma blocks per MCU: 1 (8x8 MCU), 2 (16x8) or 4 (16x16, 4:2:0).
    pub y_blocks: u8,
    /// Number of frames in the sequence.
    pub frames: u16,
}

impl StreamConfig {
    /// A small default sequence: QCIF-ish 64x48, 4:2:0, quality 75.
    pub fn small() -> StreamConfig {
        StreamConfig {
            width: 64,
            height: 48,
            quality: 75,
            y_blocks: 4,
            frames: 2,
        }
    }

    /// MCU dimensions in pixels.
    pub fn mcu_size(&self) -> (usize, usize) {
        match self.y_blocks {
            1 => (8, 8),
            2 => (16, 8),
            4 => (16, 16),
            _ => panic!("y_blocks must be 1, 2 or 4"),
        }
    }

    /// Blocks carried per MCU (luma + Cb + Cr).
    pub fn blocks_per_mcu(&self) -> usize {
        self.y_blocks as usize + 2
    }

    /// MCUs per frame.
    pub fn mcus_per_frame(&self) -> usize {
        let (mw, mh) = self.mcu_size();
        (self.width as usize / mw) * (self.height as usize / mh)
    }

    /// Total MCUs in the sequence.
    pub fn total_mcus(&self) -> usize {
        self.mcus_per_frame() * self.frames as usize
    }

    /// Pixels per MCU.
    pub fn mcu_pixels(&self) -> usize {
        let (w, h) = self.mcu_size();
        w * h
    }
}

/// Content classes of the test sequences (paper §6: five real-life
/// sequences plus one synthetic random sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Content {
    /// Nearly uniform frames (video conferencing background).
    Flat,
    /// Smooth large-scale gradients.
    Gradient,
    /// Photographic: smooth with moderate texture.
    Photo,
    /// Detailed texture (foliage-like).
    Detail,
    /// High-contrast text/graphics.
    Text,
    /// Dense random coefficients coded directly — the worst-case synthetic
    /// sequence.
    SyntheticRandom,
}

/// An RGB frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major RGB triples.
    pub rgb: Vec<(u8, u8, u8)>,
}

impl Frame {
    /// Pixel accessor.
    pub fn pixel(&self, x: usize, y: usize) -> (u8, u8, u8) {
        self.rgb[y * self.width + x]
    }
}

/// Generates frame `index` of a content class.
pub fn generate_frame(cfg: &StreamConfig, content: Content, index: u16, seed: u64) -> Frame {
    let (w, h) = (cfg.width as usize, cfg.height as usize);
    let mut rng = StdRng::seed_from_u64(seed ^ ((index as u64) << 32));
    let mut rgb = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            let px = match content {
                Content::Flat => {
                    let base = 120u8.wrapping_add((index % 8) as u8);
                    let n: i16 = rng.gen_range(-2..=2);
                    let v = (base as i16 + n).clamp(0, 255) as u8;
                    (v, v, v)
                }
                Content::Gradient => {
                    let r = ((x * 255) / w.max(1)) as u8;
                    let g = ((y * 255) / h.max(1)) as u8;
                    let b = ((x + y + index as usize) % 256) as u8;
                    (r, g, b)
                }
                Content::Photo => {
                    // Low-frequency sinusoids plus mild noise.
                    let fx = x as f64 / 16.0 + index as f64 * 0.3;
                    let fy = y as f64 / 12.0;
                    let base = 128.0 + 60.0 * (fx.sin() * fy.cos());
                    let n: i16 = rng.gen_range(-8..=8);
                    let v = (base as i16 + n).clamp(0, 255) as u8;
                    (v, (v / 2 + 60), (255 - v / 3))
                }
                Content::Detail => {
                    let n: u8 = rng.gen_range(0..=255);
                    let s = (((x / 2 + y / 2) % 2) * 120) as u8;
                    (n / 2 + s / 2, n / 3 + s / 2, n / 2)
                }
                Content::Text => {
                    let on = (x / 3 + 7 * (y / 5) + index as usize) % 7 < 2;
                    if on {
                        (10, 10, 20)
                    } else {
                        (245, 245, 235)
                    }
                }
                Content::SyntheticRandom => {
                    // Pixels irrelevant: the encoder bypasses the DCT for
                    // this class; still produce something valid.
                    (rng.gen(), rng.gen(), rng.gen())
                }
            };
            rgb.push(px);
        }
    }
    Frame {
        width: w,
        height: h,
        rgb,
    }
}

/// Extracts one 8x8 plane block at (bx, by) from a sampled plane.
fn plane_block(plane: &[i16], w: usize, bx: usize, by: usize) -> [i16; 64] {
    let mut out = [0i16; 64];
    for r in 0..8 {
        for c in 0..8 {
            out[r * 8 + c] = plane[(by * 8 + r) * w + bx * 8 + c];
        }
    }
    out
}

/// Encodes one quantized, zig-zagged block into the bitstream. Returns the
/// new DC predictor.
fn encode_block(
    zz: &[i16; 64],
    dc_pred: i32,
    dc: &crate::huffman::HuffmanCode,
    ac: &crate::huffman::HuffmanCode,
    out: &mut BitWriter,
) -> i32 {
    let dc_val = zz[0] as i32;
    let diff = dc_val - dc_pred;
    let (bits, size) = magnitude_bits(diff);
    dc.encode(size as usize, out);
    out.put_bits(bits, size);
    let mut run = 0u32;
    for &c in &zz[1..] {
        if c == 0 {
            run += 1;
            continue;
        }
        while run >= 16 {
            ac.encode(ZRL, out);
            run -= 16;
        }
        let s = size_category(c as i32);
        let sym = (run as usize) * 16 + s as usize;
        ac.encode(sym, out);
        let (mb, _) = magnitude_bits(c as i32);
        out.put_bits(mb, s);
        run = 0;
    }
    if run > 0 {
        ac.encode(EOB, out);
    }
    dc_val
}

/// Encodes a complete sequence, returning the stream bytes.
///
/// # Panics
///
/// Panics if the frame dimensions are not multiples of the MCU size or
/// `y_blocks` is invalid.
pub fn encode_sequence(cfg: &StreamConfig, content: Content, seed: u64) -> Vec<u8> {
    let (mw, mh) = cfg.mcu_size();
    assert!(
        (cfg.width as usize).is_multiple_of(mw) && (cfg.height as usize).is_multiple_of(mh),
        "frame dimensions must be MCU-aligned"
    );
    let dc = dc_code();
    let ac = ac_code();
    let luma_q = scaled_table(&LUMA_BASE, cfg.quality);
    let chroma_q = scaled_table(&CHROMA_BASE, cfg.quality);

    // Byte-aligned header.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"MAMJ");
    bytes.extend_from_slice(&cfg.width.to_be_bytes());
    bytes.extend_from_slice(&cfg.height.to_be_bytes());
    bytes.push(cfg.quality);
    bytes.push(cfg.y_blocks);
    bytes.extend_from_slice(&cfg.frames.to_be_bytes());

    let mut w = BitWriter::new();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);

    for frame_idx in 0..cfg.frames {
        let frame = generate_frame(cfg, content, frame_idx, seed);
        // Build Y/Cb/Cr planes; chroma subsampled to one 8x8 block per MCU.
        let (fw, fh) = (frame.width, frame.height);
        let mut yp = vec![0i16; fw * fh];
        for (i, &(r, g, b)) in frame.rgb.iter().enumerate() {
            let (y, _, _) = rgb_to_ycbcr(r, g, b);
            yp[i] = y as i16 - 128;
        }
        let (cw, ch) = (fw / (mw / 8), fh / (mh / 8));
        let mut cbp = vec![0i16; cw * ch];
        let mut crp = vec![0i16; cw * ch];
        let (sx, sy) = (mw / 8, mh / 8);
        for cy in 0..ch {
            for cx in 0..cw {
                // Average the sampling window.
                let (mut sb, mut sr, mut cnt) = (0i32, 0i32, 0i32);
                for dy in 0..sy {
                    for dx in 0..sx {
                        let (px, py) = (cx * sx + dx, cy * sy + dy);
                        let (r, g, b) = frame.pixel(px, py);
                        let (_, cb, cr) = rgb_to_ycbcr(r, g, b);
                        sb += cb as i32;
                        sr += cr as i32;
                        cnt += 1;
                    }
                }
                cbp[cy * cw + cx] = (sb / cnt - 128) as i16;
                crp[cy * cw + cx] = (sr / cnt - 128) as i16;
            }
        }

        let mcus_x = fw / mw;
        let mcus_y = fh / mh;
        let mut dc_pred = [0i32; 3]; // Y, Cb, Cr — reset per frame
        for my in 0..mcus_y {
            for mx in 0..mcus_x {
                // Luma blocks in raster order within the MCU.
                let (ybx, yby) = (mw / 8, mh / 8);
                for by in 0..yby {
                    for bx in 0..ybx {
                        let zz = if content == Content::SyntheticRandom {
                            random_dense_block(&mut rng)
                        } else {
                            let blk = plane_block(&yp, fw, mx * ybx + bx, my * yby + by);
                            to_zigzag(&quantize(&fdct(&blk), &luma_q))
                        };
                        dc_pred[0] = encode_block(&zz, dc_pred[0], &dc, &ac, &mut w);
                    }
                }
                for (comp, plane) in [(1usize, &cbp), (2usize, &crp)] {
                    let zz = if content == Content::SyntheticRandom {
                        random_dense_block(&mut rng)
                    } else {
                        let blk = plane_block(plane, cw, mx, my);
                        to_zigzag(&quantize(&fdct(&blk), &chroma_q))
                    };
                    dc_pred[comp] = encode_block(&zz, dc_pred[comp], &dc, &ac, &mut w);
                }
            }
        }
    }
    bytes.extend_from_slice(&w.finish());
    bytes
}

/// A dense random coefficient block in zig-zag order (worst-case class):
/// every coefficient non-zero at near-maximal magnitude (size category 10),
/// driving the variable-length decoder close to its WCET with very little
/// execution-time variation.
fn random_dense_block(rng: &mut StdRng) -> [i16; 64] {
    let mut zz = [0i16; 64];
    for c in zz.iter_mut() {
        let mag: i16 = rng.gen_range(512..=1023);
        *c = if rng.gen() { mag } else { -mag };
    }
    zz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_geometry() {
        let cfg = StreamConfig::small();
        assert_eq!(cfg.mcu_size(), (16, 16));
        assert_eq!(cfg.blocks_per_mcu(), 6);
        assert_eq!(cfg.mcus_per_frame(), 4 * 3);
        assert_eq!(cfg.total_mcus(), 24);
        assert_eq!(cfg.mcu_pixels(), 256);
    }

    #[test]
    fn sampling_variants() {
        let mut cfg = StreamConfig::small();
        cfg.y_blocks = 1;
        assert_eq!(cfg.mcu_size(), (8, 8));
        assert_eq!(cfg.blocks_per_mcu(), 3);
        cfg.y_blocks = 2;
        assert_eq!(cfg.mcu_size(), (16, 8));
        assert_eq!(cfg.blocks_per_mcu(), 4);
    }

    #[test]
    fn frames_are_deterministic() {
        let cfg = StreamConfig::small();
        let a = generate_frame(&cfg, Content::Photo, 1, 42);
        let b = generate_frame(&cfg, Content::Photo, 1, 42);
        assert_eq!(a, b);
        let c = generate_frame(&cfg, Content::Photo, 2, 42);
        assert_ne!(a, c);
    }

    #[test]
    fn streams_are_deterministic_and_nonempty() {
        let cfg = StreamConfig::small();
        let s1 = encode_sequence(&cfg, Content::Gradient, 7);
        let s2 = encode_sequence(&cfg, Content::Gradient, 7);
        assert_eq!(s1, s2);
        assert!(s1.len() > 16);
        assert_eq!(&s1[..4], b"MAMJ");
    }

    #[test]
    fn synthetic_streams_are_much_larger() {
        let cfg = StreamConfig::small();
        let flat = encode_sequence(&cfg, Content::Flat, 1).len();
        let synth = encode_sequence(&cfg, Content::SyntheticRandom, 1).len();
        assert!(
            synth > 4 * flat,
            "synthetic {synth} should dwarf flat {flat}"
        );
    }

    #[test]
    fn content_classes_order_by_complexity() {
        let cfg = StreamConfig::small();
        let flat = encode_sequence(&cfg, Content::Flat, 3).len();
        let photo = encode_sequence(&cfg, Content::Photo, 3).len();
        let detail = encode_sequence(&cfg, Content::Detail, 3).len();
        assert!(flat < photo, "flat {flat} < photo {photo}");
        assert!(photo < detail, "photo {photo} < detail {detail}");
    }

    #[test]
    #[should_panic(expected = "MCU-aligned")]
    fn misaligned_dimensions_panic() {
        let cfg = StreamConfig {
            width: 60, // not a multiple of 16
            ..StreamConfig::small()
        };
        let _ = encode_sequence(&cfg, Content::Flat, 1);
    }
}
