//! The evaluation sequences of paper §6.1: five real-life test sequences
//! and one synthetic worst-case sequence, plus profiling helpers that turn
//! a decode run into per-actor execution-time traces for the simulator and
//! mean times for the "expected" analysis.

use crate::actors::{decode_stream, CostProfile, DecodeError, DecodeResult};

use crate::cost;
use crate::encoder::{encode_sequence, Content, StreamConfig};

/// A named test sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestSequence {
    /// Display name.
    pub name: &'static str,
    /// Content class.
    pub content: Content,
    /// Generator seed.
    pub seed: u64,
}

/// The five real-life test sequences.
pub fn test_set() -> Vec<TestSequence> {
    vec![
        TestSequence {
            name: "conference",
            content: Content::Flat,
            seed: 11,
        },
        TestSequence {
            name: "sunset",
            content: Content::Gradient,
            seed: 23,
        },
        TestSequence {
            name: "portrait",
            content: Content::Photo,
            seed: 37,
        },
        TestSequence {
            name: "foliage",
            content: Content::Detail,
            seed: 53,
        },
        TestSequence {
            name: "slides",
            content: Content::Text,
            seed: 71,
        },
    ]
}

/// The synthetic worst-case sequence.
pub fn synthetic() -> TestSequence {
    TestSequence {
        name: "synthetic",
        content: Content::SyntheticRandom,
        seed: 97,
    }
}

/// Encodes and decodes one sequence, returning frames and the cost profile.
///
/// # Errors
///
/// Propagates decode errors (none expected for generated streams).
pub fn profile_sequence(
    cfg: &StreamConfig,
    seq: TestSequence,
) -> Result<DecodeResult, DecodeError> {
    let stream = encode_sequence(cfg, seq.content, seq.seed);
    decode_stream(&stream)
}

/// Converts a profile into per-actor firing traces in graph actor order
/// (`VLD`, `IQZZ`, `IDCT`, `CC`, `Raster`), for
/// [`TraceTimes`](../../mamps_sim/exec_time/struct.TraceTimes.html).
pub fn traces_of(profile: &CostProfile) -> Vec<Vec<u64>> {
    vec![
        profile.vld.clone(),
        profile.iqzz.clone(),
        profile.idct.clone(),
        profile.cc.clone(),
        profile.raster.clone(),
    ]
}

/// Mean execution time per actor (rounded up), graph actor order.
pub fn mean_times(profile: &CostProfile) -> Vec<u64> {
    traces_of(profile)
        .iter()
        .map(|t| {
            if t.is_empty() {
                0
            } else {
                let s: u128 = t.iter().map(|&x| x as u128).sum();
                s.div_ceil(t.len() as u128) as u64
            }
        })
        .collect()
}

/// WCETs per actor for the given geometry, graph actor order.
pub fn wcets(cfg: &StreamConfig) -> Vec<u64> {
    let px = cfg.mcu_pixels() as u64;
    vec![
        cost::wcet_vld(cfg.blocks_per_mcu() as u64),
        cost::wcet_iqzz(),
        cost::wcet_idct(),
        cost::wcet_cc(px),
        cost::wcet_raster(px),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_distinct_sequences() {
        let mut names: Vec<&str> = test_set().iter().map(|s| s.name).collect();
        names.push(synthetic().name);
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn profiles_cover_all_actors() {
        let cfg = StreamConfig::small();
        let res = profile_sequence(&cfg, synthetic()).unwrap();
        let traces = traces_of(&res.profile);
        assert_eq!(traces.len(), crate::app_model::ACTOR_NAMES.len());
        assert!(traces.iter().all(|t| !t.is_empty()));
    }

    #[test]
    fn means_bounded_by_wcets() {
        let cfg = StreamConfig::small();
        for seq in test_set().into_iter().chain([synthetic()]) {
            let res = profile_sequence(&cfg, seq).unwrap();
            let means = mean_times(&res.profile);
            let w = wcets(&cfg);
            for (m, w) in means.iter().zip(w.iter()) {
                assert!(m <= w, "{}: mean {m} above wcet {w}", seq.name);
            }
        }
    }

    #[test]
    fn synthetic_vld_mean_highest() {
        let cfg = StreamConfig::small();
        let synth_mean = mean_times(&profile_sequence(&cfg, synthetic()).unwrap().profile)[0];
        for seq in test_set() {
            let m = mean_times(&profile_sequence(&cfg, seq).unwrap().profile)[0];
            assert!(
                synth_mean > m,
                "synthetic VLD {synth_mean} must exceed {} ({m})",
                seq.name
            );
        }
    }
}
