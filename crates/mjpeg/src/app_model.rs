//! The MJPEG application model: the SDF graph of paper Fig. 5 plus the
//! actor metrics, packaged as a [`ApplicationModel`] for the design flow.

use std::collections::HashMap;

use mamps_sdf::graph::{SdfGraph, SdfGraphBuilder};
use mamps_sdf::model::{
    ActorImplementation, ApplicationModel, ArgBinding, ArgDirection, ThroughputConstraint,
};
use mamps_sdf::SdfError;

use crate::cost;
use crate::encoder::StreamConfig;

/// Actor names in graph order (actor ids 0..5).
pub const ACTOR_NAMES: [&str; 5] = ["VLD", "IQZZ", "IDCT", "CC", "Raster"];

/// Builds the Fig. 5 SDF graph for the given stream geometry, with WCET
/// execution times from the cost model.
///
/// Rates: `vld2iqzz` 10:1, `iqzz2idct` 1:1, `idct2cc` 1:10, `cc2raster`
/// 1:1, plus the `subHeader1`/`subHeader2` forwarding channels and the
/// `vldState`/`rasterState` self-edges. One iteration decodes one MCU
/// (q = [1, 10, 10, 1, 1]).
pub fn fig5_graph(cfg: &StreamConfig) -> SdfGraph {
    let pixels = cfg.mcu_pixels() as u64;
    let mut b = SdfGraphBuilder::new("mjpeg");
    let vld = b.add_actor("VLD", cost::wcet_vld(cfg.blocks_per_mcu() as u64));
    let iqzz = b.add_actor("IQZZ", cost::wcet_iqzz());
    let idct = b.add_actor("IDCT", cost::wcet_idct());
    let cc = b.add_actor("CC", cost::wcet_cc(pixels));
    let raster = b.add_actor("Raster", cost::wcet_raster(pixels));

    let block_bytes = 64 * 2; // 64 i16 coefficients
    b.add_channel_full("vld2iqzz", vld, 10, iqzz, 1, 0, block_bytes);
    b.add_channel_full("iqzz2idct", iqzz, 1, idct, 1, 0, block_bytes);
    b.add_channel_full("idct2cc", idct, 1, cc, 10, 0, block_bytes);
    b.add_channel_full("cc2raster", cc, 1, raster, 1, 0, pixels * 3);
    b.add_channel_full("subHeader1", vld, 1, cc, 1, 0, 8);
    b.add_channel_full("subHeader2", vld, 1, raster, 1, 0, 8);
    b.add_channel_with_tokens("vldState", vld, 1, vld, 1, 1);
    b.add_channel_with_tokens("rasterState", raster, 1, raster, 1, 1);
    b.build().expect("Fig. 5 graph is valid")
}

/// Instruction/data memory footprints of the actor implementations (bytes),
/// indicative MicroBlaze figures.
fn memory_of(actor: &str) -> (u64, u64) {
    match actor {
        "VLD" => (14 * 1024, 6 * 1024),
        "IQZZ" => (3 * 1024, 1024),
        "IDCT" => (8 * 1024, 2 * 1024),
        "CC" => (4 * 1024, 2 * 1024),
        "Raster" => (3 * 1024, 4 * 1024),
        _ => (4 * 1024, 1024),
    }
}

/// Builds the complete MJPEG application model (graph + implementations).
///
/// # Errors
///
/// Propagates model validation errors (none expected for this fixed graph).
pub fn mjpeg_application(
    cfg: &StreamConfig,
    constraint: Option<ThroughputConstraint>,
) -> Result<ApplicationModel, SdfError> {
    let graph = fig5_graph(cfg);
    let mut implementations = HashMap::new();
    for (aid, actor) in graph.actors() {
        let (imem, dmem) = memory_of(actor.name());
        let mut args = Vec::new();
        let mut idx = 0usize;
        for &cid in graph.incoming(aid) {
            let ch = graph.channel(cid);
            if ch.is_self_edge() {
                continue;
            }
            args.push(ArgBinding {
                arg_index: idx,
                channel: ch.name().to_string(),
                direction: ArgDirection::Input,
            });
            idx += 1;
        }
        for &cid in graph.outgoing(aid) {
            let ch = graph.channel(cid);
            if ch.is_self_edge() {
                continue;
            }
            args.push(ArgBinding {
                arg_index: idx,
                channel: ch.name().to_string(),
                direction: ArgDirection::Output,
            });
            idx += 1;
        }
        implementations.insert(
            actor.name().to_string(),
            vec![ActorImplementation {
                processor_type: "microblaze".into(),
                function_name: format!("actor_{}", actor.name().to_lowercase()),
                wcet: actor.execution_time(),
                instruction_memory: imem,
                data_memory: dmem,
                args,
            }],
        );
    }
    ApplicationModel::new(graph, implementations, constraint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamps_sdf::repetition::repetition_vector;
    use mamps_sdf::state_space::{throughput, AnalysisOptions};

    #[test]
    fn fig5_repetition_vector() {
        let g = fig5_graph(&StreamConfig::small());
        let q = repetition_vector(&g).unwrap();
        let of = |n: &str| q.of(g.actor_by_name(n).unwrap());
        assert_eq!(of("VLD"), 1);
        assert_eq!(of("IQZZ"), 10);
        assert_eq!(of("IDCT"), 10);
        assert_eq!(of("CC"), 1);
        assert_eq!(of("Raster"), 1);
    }

    #[test]
    fn fig5_is_live_and_analysable() {
        let g = fig5_graph(&StreamConfig::small());
        assert!(mamps_sdf::liveness::check_liveness(&g).is_ok());
        let t = throughput(&g, &AnalysisOptions::default()).unwrap();
        assert!(t.as_f64() > 0.0);
        // Single-processor-free upper bound sanity: the pipeline bottleneck
        // is at most the VLD WCET or the 10x block chain.
        let cy = t.cycles_per_iteration();
        assert!(cy >= cost::wcet_vld(6) as f64);
    }

    #[test]
    fn application_model_validates() {
        let app = mjpeg_application(&StreamConfig::small(), None).unwrap();
        let vld = app.graph().actor_by_name("VLD").unwrap();
        let im = app.implementation_for(vld, "microblaze").unwrap();
        assert_eq!(im.wcet, cost::wcet_vld(6));
        // VLD binds 3 explicit channels (vld2iqzz + the 2 subheaders; no
        // inputs besides the implicit state edge).
        assert_eq!(im.args.len(), 3);
        assert!(im.args.iter().all(|a| a.direction == ArgDirection::Output));
    }

    #[test]
    fn token_sizes_reflect_geometry() {
        let g = fig5_graph(&StreamConfig::small());
        let c = g
            .channel(g.channel_by_name("cc2raster").unwrap())
            .token_size();
        assert_eq!(c, 256 * 3);
        let b = g
            .channel(g.channel_by_name("vld2iqzz").unwrap())
            .token_size();
        assert_eq!(b, 128);
    }

    #[test]
    fn subheader_traffic_is_small_fraction() {
        // Paper §6.3: initialization tokens use ~1 % of the communication.
        let g = fig5_graph(&StreamConfig::small());
        let q = repetition_vector(&g).unwrap();
        let mut total = 0u64;
        let mut sub = 0u64;
        for (_, ch) in g.channels() {
            if ch.is_self_edge() {
                continue;
            }
            let words = q.of(ch.src()) * ch.production_rate() * ch.token_size().div_ceil(4);
            total += words;
            if ch.name().starts_with("subHeader") {
                sub += words;
            }
        }
        let frac = sub as f64 / total as f64;
        assert!(frac < 0.02, "subHeader fraction {frac} should be ~1 %");
    }
}
