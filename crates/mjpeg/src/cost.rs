//! The deterministic cycle-cost model of the MJPEG actors.
//!
//! On the real platform, per-firing execution times come from running actor
//! C code on a MicroBlaze; the paper derives WCETs with a scenario-based
//! method plus measurement (§6). Here every actor charges cycles through
//! this model as it does its actual work (bits parsed, coefficients stored,
//! pixels written), so:
//!
//! * per-firing **actual** costs are deterministic and data-dependent, and
//! * per-actor **WCETs** follow analytically from the same constants with
//!   worst-case parameters, guaranteeing `actual <= WCET` structurally —
//!   the property that makes the flow's throughput bound conservative.
//!
//! The constants approximate a MicroBlaze-class in-order core (a few cycles
//! per arithmetic op, branches, memory accesses) — absolute values are
//! indicative, relative weights realistic.

use crate::huffman::{ac_code, dc_code};

/// Cycles to decode one Huffman-coded bit (table walk + shift).
pub const BIT_DECODE: u64 = 2;
/// Cycles per magnitude bit read (same bit loop as the Huffman walk).
pub const MAGNITUDE_BIT: u64 = 2;
/// Cycles to store one decoded coefficient (bounds check + write).
pub const COEF_STORE: u64 = 2;
/// Fixed VLD cycles per block (loop setup, DC predictor update).
pub const VLD_BLOCK_OVERHEAD: u64 = 40;
/// Fixed VLD cycles per MCU (component loop, header bookkeeping).
pub const VLD_MCU_OVERHEAD: u64 = 120;

/// IQZZ: cycles per coefficient (dequantize multiply + zig-zag move).
pub const IQZZ_PER_COEF: u64 = 5;
/// IQZZ fixed cycles per block.
pub const IQZZ_BLOCK_OVERHEAD: u64 = 30;

/// IDCT fixed cycles per block (row/column pass setup, output clamp).
pub const IDCT_BLOCK_OVERHEAD: u64 = 300;
/// IDCT cycles per *non-zero* input coefficient (sparse IDCT: zero
/// coefficients contribute nothing and are skipped, the classic decoder
/// optimization that makes IDCT time data-dependent).
pub const IDCT_PER_NONZERO: u64 = 26;

/// CC cycles per pixel (3 multiplies + clamps).
pub const CC_PER_PIXEL: u64 = 8;
/// CC fixed cycles per MCU.
pub const CC_MCU_OVERHEAD: u64 = 60;

/// Raster cycles per pixel (address computation + store).
pub const RASTER_PER_PIXEL: u64 = 3;
/// Raster fixed cycles per MCU.
pub const RASTER_MCU_OVERHEAD: u64 = 50;

/// Maximum blocks per MCU: the paper's VLD "produces up to 10 frequency
/// blocks per MCU depending on the sampling settings"; the SDF rate is
/// fixed at 10 and unused slots are padding (the modelling overhead of
/// §6.3).
pub const MAX_BLOCKS_PER_MCU: u64 = 10;

/// A running cycle counter, threaded through actor implementations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleCounter(pub u64);

impl CycleCounter {
    /// Charges `cycles`.
    pub fn charge(&mut self, cycles: u64) {
        self.0 += cycles;
    }

    /// Takes the accumulated count, resetting to zero.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.0)
    }
}

/// Worst-case bits to decode one 8x8 block: every coefficient non-zero at
/// maximum magnitude (DC size 11, AC size 10), using the actual maximum
/// code lengths of the shared Huffman tables.
pub fn worst_case_block_bits() -> u64 {
    let dc = dc_code();
    let ac = ac_code();
    let dc_bits = dc.max_code_len() as u64 + 11;
    let ac_bits = 63 * (ac.max_code_len() as u64 + 10);
    dc_bits + ac_bits
}

/// WCET of one VLD firing: one MCU with `blocks_per_mcu` *parsed* blocks of
/// worst-case density. The SDF output rate is fixed at
/// [`MAX_BLOCKS_PER_MCU`]; the unparsed slots are zero-padding whose cost is
/// in the fixed MCU overhead. The sampling (hence `blocks_per_mcu`) is a
/// compile-time property of the stream, known to the WCET analysis exactly
/// like the quantization tables are known to IQZZ.
pub fn wcet_vld(blocks_per_mcu: u64) -> u64 {
    let per_block = VLD_BLOCK_OVERHEAD + worst_case_block_bits() * BIT_DECODE + 64 * COEF_STORE;
    VLD_MCU_OVERHEAD + blocks_per_mcu.min(MAX_BLOCKS_PER_MCU) * per_block
}

/// WCET of one IQZZ firing (one block; data-independent).
pub fn wcet_iqzz() -> u64 {
    IQZZ_BLOCK_OVERHEAD + 64 * IQZZ_PER_COEF
}

/// WCET of one IDCT firing (one block, all coefficients non-zero).
pub fn wcet_idct() -> u64 {
    IDCT_BLOCK_OVERHEAD + 64 * IDCT_PER_NONZERO
}

/// WCET of one CC firing (one MCU of `pixels` pixels).
pub fn wcet_cc(pixels: u64) -> u64 {
    CC_MCU_OVERHEAD + pixels * CC_PER_PIXEL
}

/// WCET of one Raster firing.
pub fn wcet_raster(pixels: u64) -> u64 {
    RASTER_MCU_OVERHEAD + pixels * RASTER_PER_PIXEL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_charges_and_takes() {
        let mut c = CycleCounter::default();
        c.charge(5);
        c.charge(7);
        assert_eq!(c.take(), 12);
        assert_eq!(c.take(), 0);
    }

    #[test]
    fn wcets_are_positive_and_ordered() {
        assert!(wcet_vld(6) > wcet_iqzz());
        assert!(wcet_idct() > wcet_iqzz());
        assert!(wcet_cc(256) > 0);
        assert!(wcet_raster(256) > 0);
        assert!(wcet_vld(10) > wcet_vld(6));
    }

    #[test]
    fn worst_case_bits_dominated_by_ac() {
        let b = worst_case_block_bits();
        assert!(b > 63 * 10, "at least the magnitude bits: {b}");
        assert!(b < 63 * 64, "sane upper bound: {b}");
    }

    #[test]
    fn vld_wcet_scales_with_parsed_blocks() {
        let per_block = VLD_BLOCK_OVERHEAD + worst_case_block_bits() * BIT_DECODE + 64 * COEF_STORE;
        assert_eq!(wcet_vld(6), VLD_MCU_OVERHEAD + 6 * per_block);
        // Requests beyond the fixed rate clamp at 10.
        assert_eq!(wcet_vld(12), wcet_vld(10));
    }
}
