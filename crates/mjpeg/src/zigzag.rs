//! Zig-zag scan order for 8x8 blocks, computed rather than hard-coded.

/// Block dimension.
pub const N: usize = 8;

/// Returns the zig-zag order: `order[k]` is the raster index of the `k`-th
/// coefficient in zig-zag order.
pub fn zigzag_order() -> [usize; 64] {
    let mut order = [0usize; 64];
    let mut k = 0;
    for s in 0..(2 * N - 1) {
        // Walk each anti-diagonal, alternating direction.
        let range: Vec<(usize, usize)> = (0..=s)
            .filter_map(|i| {
                let j = s - i;
                if i < N && j < N {
                    Some((i, j))
                } else {
                    None
                }
            })
            .collect();
        let iter: Box<dyn Iterator<Item = &(usize, usize)>> = if s % 2 == 0 {
            Box::new(range.iter().rev()) // up-right on even diagonals
        } else {
            Box::new(range.iter())
        };
        for &(i, j) in iter {
            order[k] = i * N + j;
            k += 1;
        }
    }
    order
}

/// Reorders a raster-order block into zig-zag order.
pub fn to_zigzag(block: &[i16; 64]) -> [i16; 64] {
    let order = zigzag_order();
    let mut out = [0i16; 64];
    for (k, &idx) in order.iter().enumerate() {
        out[k] = block[idx];
    }
    out
}

/// Reorders a zig-zag-order block back into raster order.
pub fn from_zigzag(zz: &[i16; 64]) -> [i16; 64] {
    let order = zigzag_order();
    let mut out = [0i16; 64];
    for (k, &idx) in order.iter().enumerate() {
        out[idx] = zz[k];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_a_permutation() {
        let order = zigzag_order();
        let mut seen = [false; 64];
        for &i in &order {
            assert!(!seen[i]);
            seen[i] = true;
        }
    }

    #[test]
    fn known_prefix() {
        // The canonical JPEG zig-zag starts (0,0),(0,1),(1,0),(2,0),(1,1),(0,2)...
        let order = zigzag_order();
        assert_eq!(&order[..6], &[0, 1, 8, 16, 9, 2]);
        assert_eq!(order[63], 63);
    }

    #[test]
    fn roundtrip() {
        let mut block = [0i16; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = i as i16 * 3 - 50;
        }
        assert_eq!(from_zigzag(&to_zigzag(&block)), block);
    }
}
