//! Quantization tables and (de)quantization.

/// The classic JPEG luminance quantization matrix (quality 50 base).
pub const LUMA_BASE: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// The classic JPEG chrominance quantization matrix.
pub const CHROMA_BASE: [u16; 64] = [
    17, 18, 24, 47, 99, 99, 99, 99, //
    18, 21, 26, 66, 99, 99, 99, 99, //
    24, 26, 56, 99, 99, 99, 99, 99, //
    47, 66, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99,
];

/// Scales a base matrix by a JPEG-style quality factor (1..=100).
///
/// # Panics
///
/// Panics if `quality` is 0 or above 100.
pub fn scaled_table(base: &[u16; 64], quality: u8) -> [u16; 64] {
    assert!((1..=100).contains(&quality), "quality must be 1..=100");
    let scale: u32 = if quality < 50 {
        5000 / quality as u32
    } else {
        200 - 2 * quality as u32
    };
    let mut out = [0u16; 64];
    for (o, &b) in out.iter_mut().zip(base.iter()) {
        *o = ((b as u32 * scale + 50) / 100).clamp(1, 255) as u16;
    }
    out
}

/// Quantizes a coefficient block (rounding to nearest).
pub fn quantize(block: &[i16; 64], table: &[u16; 64]) -> [i16; 64] {
    let mut out = [0i16; 64];
    for i in 0..64 {
        let q = table[i] as i32;
        let v = block[i] as i32;
        out[i] = ((v + if v >= 0 { q / 2 } else { -q / 2 }) / q) as i16;
    }
    out
}

/// De-quantizes a coefficient block.
pub fn dequantize(block: &[i16; 64], table: &[u16; 64]) -> [i16; 64] {
    let mut out = [0i16; 64];
    for i in 0..64 {
        out[i] = (block[i] as i32 * table[i] as i32).clamp(-32768, 32767) as i16;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_scaling_monotone() {
        let q25 = scaled_table(&LUMA_BASE, 25);
        let q50 = scaled_table(&LUMA_BASE, 50);
        let q90 = scaled_table(&LUMA_BASE, 90);
        for i in 0..64 {
            assert!(q25[i] >= q50[i]);
            assert!(q50[i] >= q90[i]);
            assert!(q90[i] >= 1);
        }
        // Quality 50 is the base table.
        assert_eq!(q50, LUMA_BASE);
    }

    #[test]
    fn quant_dequant_bounded_error() {
        let table = scaled_table(&LUMA_BASE, 75);
        let mut block = [0i16; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (i as i16 - 32) * 13;
        }
        let rec = dequantize(&quantize(&block, &table), &table);
        for i in 0..64 {
            let err = (block[i] - rec[i]).unsigned_abs();
            assert!(err <= table[i] / 2 + 1, "error {err} exceeds q/2 at {i}");
        }
    }

    #[test]
    fn zero_block_stays_zero() {
        let table = scaled_table(&CHROMA_BASE, 50);
        let zero = [0i16; 64];
        assert_eq!(quantize(&zero, &table), zero);
        assert_eq!(dequantize(&zero, &table), zero);
    }

    #[test]
    #[should_panic(expected = "quality")]
    fn zero_quality_panics() {
        let _ = scaled_table(&LUMA_BASE, 0);
    }
}
