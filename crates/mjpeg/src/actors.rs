//! The five MJPEG decoder actors (paper Fig. 5) with cycle accounting, and
//! the functional decode harness that profiles per-firing execution times.
//!
//! Actor granularity follows the SDF graph exactly:
//!
//! * **VLD** — one firing per MCU: parses and Huffman-decodes up to 10
//!   blocks (fixed output rate 10, unused slots padded — the modelling
//!   overhead of §6.3), and forwards the stream header on the two
//!   `subHeader` channels every iteration.
//! * **IQZZ**, **IDCT** — one firing per block (10 per iteration).
//! * **CC** — one firing per MCU: 10 blocks to RGB pixels.
//! * **Raster** — one firing per MCU: pixels into the frame buffer
//!   (stateful: write position, modelled by the `rasterState` self-edge).

use crate::bitstream::BitReader;
use crate::color::ycbcr_to_rgb;
use crate::cost::{self, CycleCounter};
use crate::dct::idct;
use crate::encoder::Frame;
use crate::huffman::{ac_code, dc_code, decode_magnitude, HuffmanCode, EOB, ZRL};
use crate::quant::{dequantize, scaled_table, CHROMA_BASE, LUMA_BASE};
use crate::zigzag::from_zigzag;

/// One 8x8 coefficient or sample block token.
pub type Block = [i16; 64];

/// The per-MCU header token carried on `subHeader1`/`subHeader2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubHeader {
    /// Frame width in pixels.
    pub width: u16,
    /// Frame height in pixels.
    pub height: u16,
    /// Luma blocks per MCU (1, 2 or 4).
    pub y_blocks: u8,
    /// Quality factor.
    pub quality: u8,
}

impl SubHeader {
    /// MCU dimensions.
    pub fn mcu_size(&self) -> (usize, usize) {
        match self.y_blocks {
            1 => (8, 8),
            2 => (16, 8),
            _ => (16, 16),
        }
    }
}

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream does not start with the `MAMJ` magic.
    BadMagic,
    /// The stream ended unexpectedly; the message locates the failure.
    Truncated(String),
    /// Invalid field values in the header.
    BadHeader(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad stream magic"),
            DecodeError::Truncated(m) => write!(f, "truncated stream: {m}"),
            DecodeError::BadHeader(m) => write!(f, "bad header: {m}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The VLD actor: header parsing plus per-MCU entropy decoding.
pub struct Vld<'a> {
    reader: BitReader<'a>,
    header: SubHeader,
    frames: u16,
    blocks_per_mcu: usize,
    mcus_per_frame: usize,
    dc: HuffmanCode,
    ac: HuffmanCode,
    dc_pred: [i32; 3],
    mcu_in_frame: usize,
}

impl<'a> Vld<'a> {
    /// Parses the stream header and prepares MCU decoding.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input.
    pub fn new(stream: &'a [u8]) -> Result<Vld<'a>, DecodeError> {
        if stream.len() < 12 || &stream[..4] != b"MAMJ" {
            return Err(DecodeError::BadMagic);
        }
        let width = u16::from_be_bytes([stream[4], stream[5]]);
        let height = u16::from_be_bytes([stream[6], stream[7]]);
        let quality = stream[8];
        let y_blocks = stream[9];
        let frames = u16::from_be_bytes([stream[10], stream[11]]);
        if !matches!(y_blocks, 1 | 2 | 4) {
            return Err(DecodeError::BadHeader(format!(
                "y_blocks {y_blocks} not in {{1,2,4}}"
            )));
        }
        if !(1..=100).contains(&quality) {
            return Err(DecodeError::BadHeader(format!("quality {quality}")));
        }
        let header = SubHeader {
            width,
            height,
            y_blocks,
            quality,
        };
        let (mw, mh) = header.mcu_size();
        if !(width as usize).is_multiple_of(mw) || !(height as usize).is_multiple_of(mh) {
            return Err(DecodeError::BadHeader("frame not MCU-aligned".into()));
        }
        let mcus_per_frame = (width as usize / mw) * (height as usize / mh);
        Ok(Vld {
            reader: BitReader::new(&stream[12..]),
            header,
            frames,
            blocks_per_mcu: y_blocks as usize + 2,
            mcus_per_frame,
            dc: dc_code(),
            ac: ac_code(),
            dc_pred: [0; 3],
            mcu_in_frame: 0,
        })
    }

    /// The stream header.
    pub fn header(&self) -> SubHeader {
        self.header
    }

    /// MCUs in the whole sequence.
    pub fn total_mcus(&self) -> usize {
        self.mcus_per_frame * self.frames as usize
    }

    /// MCUs per frame.
    pub fn mcus_per_frame(&self) -> usize {
        self.mcus_per_frame
    }

    /// Decodes one entropy-coded block in zig-zag order.
    fn decode_block(
        &mut self,
        component: usize,
        cycles: &mut CycleCounter,
    ) -> Result<Block, DecodeError> {
        cycles.charge(cost::VLD_BLOCK_OVERHEAD);
        let mut zz = [0i16; 64];
        // DC.
        let (size, bits) = self
            .dc
            .decode(&mut self.reader)
            .ok_or_else(|| DecodeError::Truncated("dc symbol".into()))?;
        cycles.charge(bits as u64 * cost::BIT_DECODE);
        let mag = self
            .reader
            .get_bits(size as u8)
            .ok_or_else(|| DecodeError::Truncated("dc magnitude".into()))?;
        cycles.charge(size as u64 * cost::MAGNITUDE_BIT);
        let diff = decode_magnitude(mag, size as u8);
        self.dc_pred[component] += diff;
        zz[0] = self.dc_pred[component] as i16;
        cycles.charge(cost::COEF_STORE);
        // AC.
        let mut k = 1usize;
        while k < 64 {
            let (sym, bits) = self
                .ac
                .decode(&mut self.reader)
                .ok_or_else(|| DecodeError::Truncated("ac symbol".into()))?;
            cycles.charge(bits as u64 * cost::BIT_DECODE);
            if sym == EOB {
                break;
            }
            if sym == ZRL {
                k += 16;
                continue;
            }
            let run = sym / 16;
            let size = (sym % 16) as u8;
            k += run;
            if k >= 64 {
                return Err(DecodeError::Truncated("run past block end".into()));
            }
            let mag = self
                .reader
                .get_bits(size)
                .ok_or_else(|| DecodeError::Truncated("ac magnitude".into()))?;
            cycles.charge(size as u64 * cost::MAGNITUDE_BIT);
            zz[k] = decode_magnitude(mag, size) as i16;
            cycles.charge(cost::COEF_STORE);
            k += 1;
        }
        Ok(zz)
    }

    /// Fires once: decodes one MCU into exactly
    /// [`cost::MAX_BLOCKS_PER_MCU`] block tokens (padded with zero blocks)
    /// plus the two sub-header tokens. Returns the cycles spent.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input.
    pub fn fire(&mut self) -> Result<(Vec<Block>, SubHeader, SubHeader, u64), DecodeError> {
        let mut cycles = CycleCounter::default();
        cycles.charge(cost::VLD_MCU_OVERHEAD);
        if self.mcu_in_frame == 0 {
            self.dc_pred = [0; 3]; // per-frame predictor reset
        }
        let mut blocks = Vec::with_capacity(cost::MAX_BLOCKS_PER_MCU as usize);
        let luma = self.blocks_per_mcu - 2;
        for b in 0..self.blocks_per_mcu {
            let comp = if b < luma {
                0
            } else if b == luma {
                1
            } else {
                2
            };
            blocks.push(self.decode_block(comp, &mut cycles)?);
        }
        while blocks.len() < cost::MAX_BLOCKS_PER_MCU as usize {
            blocks.push([0i16; 64]); // fixed-rate padding
        }
        self.mcu_in_frame = (self.mcu_in_frame + 1) % self.mcus_per_frame;
        Ok((blocks, self.header, self.header, cycles.take()))
    }
}

/// The IQZZ actor: de-quantization and zig-zag reordering of one block.
pub struct Iqzz {
    luma_q: [u16; 64],
    chroma_q: [u16; 64],
    blocks_per_mcu: usize,
    block_index: usize,
}

impl Iqzz {
    /// Configures the actor for a stream (quality and sampling are
    /// compile-time constants of the generated platform).
    pub fn new(header: SubHeader) -> Iqzz {
        Iqzz {
            luma_q: scaled_table(&LUMA_BASE, header.quality),
            chroma_q: scaled_table(&CHROMA_BASE, header.quality),
            blocks_per_mcu: header.y_blocks as usize + 2,
            block_index: 0,
        }
    }

    /// Fires once on one block token; returns the raster-order coefficient
    /// block and the cycles spent (data-independent).
    pub fn fire(&mut self, zz: &Block) -> (Block, u64) {
        let mut cycles = CycleCounter::default();
        cycles.charge(cost::IQZZ_BLOCK_OVERHEAD + 64 * cost::IQZZ_PER_COEF);
        let luma = self.blocks_per_mcu - 2;
        let table = if self.block_index < luma {
            &self.luma_q
        } else {
            &self.chroma_q
        };
        // Padded blocks (index >= blocks_per_mcu) are all-zero; the
        // arithmetic is harmless and charged identically.
        let deq = dequantize(&from_zigzag(zz), table);
        self.block_index = (self.block_index + 1) % cost::MAX_BLOCKS_PER_MCU as usize;
        (deq, cycles.take())
    }
}

/// The IDCT actor: sparse inverse DCT of one block.
#[derive(Debug, Clone, Default)]
pub struct Idct;

impl Idct {
    /// Fires once; cost scales with the non-zero input coefficients.
    pub fn fire(&mut self, block: &Block) -> (Block, u64) {
        let mut cycles = CycleCounter::default();
        let nonzero = block.iter().filter(|&&c| c != 0).count() as u64;
        cycles.charge(cost::IDCT_BLOCK_OVERHEAD + nonzero * cost::IDCT_PER_NONZERO);
        let out = if nonzero == 0 {
            [0i16; 64]
        } else {
            idct(block)
        };
        (out, cycles.take())
    }
}

/// One decoded MCU of RGB pixels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McuPixels {
    /// MCU width.
    pub width: usize,
    /// MCU height.
    pub height: usize,
    /// Row-major RGB.
    pub rgb: Vec<(u8, u8, u8)>,
}

/// The CC actor: colour conversion of one MCU.
#[derive(Debug, Clone, Default)]
pub struct ColorConversion;

impl ColorConversion {
    /// Fires once on the 10 block tokens of an MCU plus the sub-header.
    pub fn fire(&mut self, blocks: &[Block], header: SubHeader) -> (McuPixels, u64) {
        let (mw, mh) = header.mcu_size();
        let mut cycles = CycleCounter::default();
        cycles.charge(cost::CC_MCU_OVERHEAD + (mw * mh) as u64 * cost::CC_PER_PIXEL);
        let luma = header.y_blocks as usize;
        let cb = &blocks[luma];
        let cr = &blocks[luma + 1];
        let (sx, sy) = (mw / 8, mh / 8);
        let mut rgb = Vec::with_capacity(mw * mh);
        for y in 0..mh {
            for x in 0..mw {
                // Luma block layout: raster order of 8x8 blocks.
                let (bx, by) = (x / 8, y / 8);
                let yblk = &blocks[by * (mw / 8) + bx];
                let ys = (yblk[(y % 8) * 8 + (x % 8)] as i32 + 128).clamp(0, 255) as u8;
                let (cxs, cys) = (x / sx, y / sy);
                let cbv = (cb[cys * 8 + cxs] as i32 + 128).clamp(0, 255) as u8;
                let crv = (cr[cys * 8 + cxs] as i32 + 128).clamp(0, 255) as u8;
                rgb.push(ycbcr_to_rgb(ys, cbv, crv));
            }
        }
        (
            McuPixels {
                width: mw,
                height: mh,
                rgb,
            },
            cycles.take(),
        )
    }
}

/// The Raster actor: stateful placement of MCUs into frames.
#[derive(Debug, Clone, Default)]
pub struct Raster {
    frame: Vec<(u8, u8, u8)>,
    mcu_index: usize,
    /// Completed frames.
    pub frames: Vec<Frame>,
}

impl Raster {
    /// Fires once: writes one MCU into the frame buffer; pushes the frame
    /// to [`Raster::frames`] when complete. Returns the cycles spent.
    pub fn fire(&mut self, mcu: &McuPixels, header: SubHeader) -> u64 {
        let mut cycles = CycleCounter::default();
        cycles.charge(
            cost::RASTER_MCU_OVERHEAD + (mcu.width * mcu.height) as u64 * cost::RASTER_PER_PIXEL,
        );
        let (fw, fh) = (header.width as usize, header.height as usize);
        if self.frame.is_empty() {
            self.frame = vec![(0, 0, 0); fw * fh];
        }
        let mcus_x = fw / mcu.width;
        let (mx, my) = (self.mcu_index % mcus_x, self.mcu_index / mcus_x);
        for y in 0..mcu.height {
            for x in 0..mcu.width {
                self.frame[(my * mcu.height + y) * fw + mx * mcu.width + x] =
                    mcu.rgb[y * mcu.width + x];
            }
        }
        self.mcu_index += 1;
        if self.mcu_index == mcus_x * (fh / mcu.height) {
            self.frames.push(Frame {
                width: fw,
                height: fh,
                rgb: std::mem::take(&mut self.frame),
            });
            self.mcu_index = 0;
        }
        cycles.take()
    }
}

/// Per-actor, per-firing cycle profile of a decoded sequence.
#[derive(Debug, Clone, Default)]
pub struct CostProfile {
    /// VLD cycles per MCU firing.
    pub vld: Vec<u64>,
    /// IQZZ cycles per block firing.
    pub iqzz: Vec<u64>,
    /// IDCT cycles per block firing.
    pub idct: Vec<u64>,
    /// CC cycles per MCU firing.
    pub cc: Vec<u64>,
    /// Raster cycles per MCU firing.
    pub raster: Vec<u64>,
}

/// Result of a functional decode.
#[derive(Debug, Clone)]
pub struct DecodeResult {
    /// The decoded frames.
    pub frames: Vec<Frame>,
    /// The stream header.
    pub header: SubHeader,
    /// Per-firing execution-time profile.
    pub profile: CostProfile,
}

/// Decodes a complete stream functionally, recording the cost profile.
///
/// # Errors
///
/// Returns [`DecodeError`] on malformed input.
pub fn decode_stream(stream: &[u8]) -> Result<DecodeResult, DecodeError> {
    let mut vld = Vld::new(stream)?;
    let header = vld.header();
    let mut iqzz = Iqzz::new(header);
    let mut idct = Idct;
    let mut cc = ColorConversion;
    let mut raster = Raster::default();
    let mut profile = CostProfile::default();

    for _ in 0..vld.total_mcus() {
        let (blocks, sh1, sh2, c) = vld.fire()?;
        profile.vld.push(c);
        let mut spatial = Vec::with_capacity(blocks.len());
        for b in &blocks {
            let (deq, ci) = iqzz.fire(b);
            profile.iqzz.push(ci);
            let (px, cd) = idct.fire(&deq);
            profile.idct.push(cd);
            spatial.push(px);
        }
        let (mcu, ccy) = cc.fire(&spatial, sh1);
        profile.cc.push(ccy);
        profile.raster.push(raster.fire(&mcu, sh2));
    }
    Ok(DecodeResult {
        frames: std::mem::take(&mut raster.frames),
        header,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode_sequence, generate_frame, Content, StreamConfig};

    #[test]
    fn decode_matches_frame_count() {
        let cfg = StreamConfig::small();
        let stream = encode_sequence(&cfg, Content::Gradient, 9);
        let res = decode_stream(&stream).unwrap();
        assert_eq!(res.frames.len(), cfg.frames as usize);
        assert_eq!(res.frames[0].width, 64);
        assert_eq!(res.frames[0].height, 48);
        assert_eq!(res.profile.vld.len(), cfg.total_mcus());
        assert_eq!(res.profile.iqzz.len(), cfg.total_mcus() * 10);
    }

    #[test]
    fn flat_content_roundtrips_closely() {
        let cfg = StreamConfig {
            quality: 95,
            ..StreamConfig::small()
        };
        let stream = encode_sequence(&cfg, Content::Flat, 5);
        let res = decode_stream(&stream).unwrap();
        let original = generate_frame(&cfg, Content::Flat, 0, 5);
        let mut max_err = 0i32;
        for (a, b) in original.rgb.iter().zip(res.frames[0].rgb.iter()) {
            max_err = max_err
                .max((a.0 as i32 - b.0 as i32).abs())
                .max((a.1 as i32 - b.1 as i32).abs())
                .max((a.2 as i32 - b.2 as i32).abs());
        }
        assert!(max_err <= 24, "flat reconstruction error {max_err} too big");
    }

    #[test]
    fn gradient_roundtrip_mean_error_small() {
        let cfg = StreamConfig {
            quality: 90,
            ..StreamConfig::small()
        };
        let stream = encode_sequence(&cfg, Content::Gradient, 11);
        let res = decode_stream(&stream).unwrap();
        let original = generate_frame(&cfg, Content::Gradient, 0, 11);
        let mut total = 0u64;
        for (a, b) in original.rgb.iter().zip(res.frames[0].rgb.iter()) {
            total += (a.0 as i64 - b.0 as i64).unsigned_abs()
                + (a.1 as i64 - b.1 as i64).unsigned_abs()
                + (a.2 as i64 - b.2 as i64).unsigned_abs();
        }
        let mean = total as f64 / (3 * original.rgb.len()) as f64;
        assert!(mean < 8.0, "mean abs error {mean} too large");
    }

    #[test]
    fn actual_costs_never_exceed_wcet() {
        let cfg = StreamConfig::small();
        for content in [
            Content::Flat,
            Content::Photo,
            Content::Detail,
            Content::Text,
            Content::SyntheticRandom,
        ] {
            let stream = encode_sequence(&cfg, content, 3);
            let res = decode_stream(&stream).unwrap();
            let px = cfg.mcu_pixels() as u64;
            assert!(res.profile.vld.iter().all(|&c| c <= cost::wcet_vld(6)));
            assert!(res.profile.iqzz.iter().all(|&c| c <= cost::wcet_iqzz()));
            assert!(res.profile.idct.iter().all(|&c| c <= cost::wcet_idct()));
            assert!(res.profile.cc.iter().all(|&c| c <= cost::wcet_cc(px)));
            assert!(res
                .profile
                .raster
                .iter()
                .all(|&c| c <= cost::wcet_raster(px)));
        }
    }

    #[test]
    fn synthetic_is_near_worst_case_real_is_not() {
        let cfg = StreamConfig::small();
        let synth = decode_stream(&encode_sequence(&cfg, Content::SyntheticRandom, 3)).unwrap();
        let flat = decode_stream(&encode_sequence(&cfg, Content::Flat, 3)).unwrap();
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        let wcet = cost::wcet_vld(6) as f64;
        let synth_ratio = mean(&synth.profile.vld) / wcet;
        let flat_ratio = mean(&flat.profile.vld) / wcet;
        assert!(
            synth_ratio > 0.5,
            "synthetic VLD should be near worst case: {synth_ratio}"
        );
        assert!(
            flat_ratio < 0.35,
            "flat VLD should be far from worst case: {flat_ratio}"
        );
        assert!(synth_ratio > 1.5 * flat_ratio);
    }

    #[test]
    fn bad_streams_rejected() {
        assert_eq!(decode_stream(b"NOPE").unwrap_err(), DecodeError::BadMagic);
        let mut s = encode_sequence(&StreamConfig::small(), Content::Flat, 1);
        s.truncate(40);
        assert!(matches!(decode_stream(&s), Err(DecodeError::Truncated(_))));
        // Corrupt y_blocks.
        let mut s2 = encode_sequence(&StreamConfig::small(), Content::Flat, 1);
        s2[9] = 7;
        assert!(matches!(decode_stream(&s2), Err(DecodeError::BadHeader(_))));
    }

    #[test]
    fn iqzz_cost_is_data_independent() {
        let cfg = StreamConfig::small();
        let res = decode_stream(&encode_sequence(&cfg, Content::Detail, 2)).unwrap();
        let first = res.profile.iqzz[0];
        assert!(res.profile.iqzz.iter().all(|&c| c == first));
        assert_eq!(first, cost::wcet_iqzz());
    }
}
