//! Huffman coding for the MJPEG-like bitstream.
//!
//! The encoder and decoder share deterministic code tables built with the
//! classic Huffman construction from fixed symbol-weight tables (JPEG-style
//! DC size categories and AC run/size symbols). Building the tables in code
//! rather than embedding the JPEG Annex K constants keeps both sides
//! provably consistent; the coding *scheme* (size categories, run-lengths,
//! EOB/ZRL) follows baseline JPEG.

use crate::bitstream::{BitReader, BitWriter};

/// A canonical Huffman code over symbols `0..n`.
#[derive(Debug, Clone)]
pub struct HuffmanCode {
    /// Code and bit length per symbol.
    codes: Vec<(u32, u8)>,
    /// Decode tree: nodes of (left, right); negative values encode leaves
    /// as `-(symbol + 1)`.
    tree: Vec<(i32, i32)>,
}

impl HuffmanCode {
    /// Builds an optimal prefix code for the given positive weights.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two symbols are given or a weight is zero.
    pub fn from_weights(weights: &[u64]) -> HuffmanCode {
        assert!(weights.len() >= 2, "need at least two symbols");
        assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
        // Huffman tree via two-pass sorted merge (stable, deterministic).
        // Node ids: 0..n are leaves, n.. are internal.
        let n = weights.len();
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| std::cmp::Reverse((w, i)))
            .collect();
        let mut children: Vec<(usize, usize)> = Vec::new();
        while heap.len() > 1 {
            let std::cmp::Reverse((w1, a)) = heap.pop().expect("len > 1");
            let std::cmp::Reverse((w2, b)) = heap.pop().expect("len > 1");
            let id = n + children.len();
            children.push((a, b));
            heap.push(std::cmp::Reverse((w1 + w2, id)));
        }
        let root = heap.pop().expect("one root").0 .1;

        // Assign codes by DFS (left = 0, right = 1).
        let mut codes = vec![(0u32, 0u8); n];
        let mut stack = vec![(root, 0u32, 0u8)];
        while let Some((node, code, len)) = stack.pop() {
            if node < n {
                codes[node] = (code, len.max(1));
                // A degenerate single-child tree cannot occur with >= 2
                // symbols; len >= 1 always holds except for the root leaf.
            } else {
                let (l, r) = children[node - n];
                stack.push((l, code << 1, len + 1));
                stack.push((r, (code << 1) | 1, len + 1));
            }
        }

        // Decode tree in flat form.
        let mut tree: Vec<(i32, i32)> = vec![(-0, -0); 1];
        tree[0] = (i32::MIN, i32::MIN);
        for (sym, &(code, len)) in codes.iter().enumerate() {
            let mut node = 0usize;
            for i in (0..len).rev() {
                let bit = (code >> i) & 1;
                if i == 0 {
                    let leaf = -(sym as i32) - 1;
                    if bit == 0 {
                        tree[node].0 = leaf;
                    } else {
                        tree[node].1 = leaf;
                    }
                } else {
                    let existing = if bit == 0 { tree[node].0 } else { tree[node].1 };
                    let next = if existing == i32::MIN {
                        let id = tree.len() as i32;
                        tree.push((i32::MIN, i32::MIN));
                        if bit == 0 {
                            tree[node].0 = id;
                        } else {
                            tree[node].1 = id;
                        }
                        id
                    } else {
                        existing
                    };
                    node = next as usize;
                }
            }
        }
        HuffmanCode { codes, tree }
    }

    /// Encodes `symbol` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if the symbol is out of range.
    pub fn encode(&self, symbol: usize, out: &mut BitWriter) {
        let (code, len) = self.codes[symbol];
        out.put_bits(code, len);
    }

    /// Decodes one symbol, returning `(symbol, bits_consumed)`; `None` on a
    /// truncated or invalid stream.
    pub fn decode(&self, input: &mut BitReader<'_>) -> Option<(usize, u32)> {
        let mut node = 0usize;
        let mut bits = 0u32;
        loop {
            let bit = input.get_bit()?;
            bits += 1;
            let slot = if bit == 0 {
                self.tree[node].0
            } else {
                self.tree[node].1
            };
            if slot == i32::MIN {
                return None; // invalid code path
            }
            if slot < 0 {
                return Some(((-slot - 1) as usize, bits));
            }
            node = slot as usize;
        }
    }

    /// Code length of `symbol` in bits.
    pub fn code_len(&self, symbol: usize) -> u8 {
        self.codes[symbol].1
    }

    /// The longest code length (worst case bits per symbol).
    pub fn max_code_len(&self) -> u8 {
        self.codes.iter().map(|&(_, l)| l).max().unwrap_or(0)
    }
}

/// Number of DC size categories (JPEG baseline: 0..=11).
pub const DC_SYMBOLS: usize = 12;

/// AC symbol space: `run * 16 + size` for `run` 0..=15 and `size` 0..=10,
/// where `size == 0` is meaningful only for EOB (run 0) and ZRL (run 15).
pub const AC_SYMBOLS: usize = 256;

/// End-of-block AC symbol.
pub const EOB: usize = 0x00;

/// Zero-run-length (16 zeros) AC symbol.
pub const ZRL: usize = 0xF0;

/// The shared DC code: smaller size categories are more frequent.
pub fn dc_code() -> HuffmanCode {
    let weights: Vec<u64> = (0..DC_SYMBOLS)
        .map(|s| 1 + (1u64 << (12 - s.min(11))))
        .collect();
    HuffmanCode::from_weights(&weights)
}

/// The shared AC code: EOB and short runs with small sizes dominate. The
/// weight skew is moderate, keeping the worst-case code length close to the
/// lengths of the common symbols (a flat-ish table keeps the WCET bound
/// tight, at a small compression cost on easy content).
pub fn ac_code() -> HuffmanCode {
    let mut weights = vec![1u64; AC_SYMBOLS];
    for run in 0..16u64 {
        for size in 0..11u64 {
            let sym = (run * 16 + size) as usize;
            // Frequency falls off with both run and size.
            weights[sym] = 1 + (1u64 << 10) / ((1 + run) * (1 + size));
        }
    }
    weights[EOB] = 1 << 11;
    weights[ZRL] = 1 << 6;
    HuffmanCode::from_weights(&weights)
}

/// Size category of a coefficient value (bits of `|v|`), as in JPEG.
pub fn size_category(v: i32) -> u8 {
    (32 - (v.unsigned_abs()).leading_zeros()) as u8
}

/// Encodes the magnitude bits of `v` (JPEG one's-complement style).
pub fn magnitude_bits(v: i32) -> (u32, u8) {
    let s = size_category(v);
    if v >= 0 {
        (v as u32, s)
    } else {
        ((v - 1 + (1 << s)) as u32, s)
    }
}

/// Decodes magnitude bits back into a value.
pub fn decode_magnitude(bits: u32, size: u8) -> i32 {
    if size == 0 {
        return 0;
    }
    let v = bits as i32;
    if v < (1 << (size - 1)) {
        v - (1 << size) + 1
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_code_roundtrip() {
        let code = HuffmanCode::from_weights(&[50, 30, 10, 5, 5]);
        let symbols = [0usize, 1, 2, 3, 4, 0, 0, 1, 4, 2];
        let mut w = BitWriter::new();
        for &s in &symbols {
            code.encode(s, &mut w);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            let (got, _) = code.decode(&mut r).unwrap();
            assert_eq!(got, s);
        }
    }

    #[test]
    fn frequent_symbols_get_short_codes() {
        let code = HuffmanCode::from_weights(&[1000, 10, 10, 10]);
        assert!(code.code_len(0) < code.code_len(1));
    }

    #[test]
    fn kraft_equality_holds() {
        // A Huffman code is complete: sum of 2^-len == 1.
        let code = HuffmanCode::from_weights(&[7, 5, 3, 2, 1, 1]);
        let sum: f64 = (0..6).map(|s| 2f64.powi(-(code.code_len(s) as i32))).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn magnitude_roundtrip() {
        for v in -1024..=1024 {
            let (bits, size) = magnitude_bits(v);
            assert_eq!(decode_magnitude(bits, size), v, "value {v}");
        }
    }

    #[test]
    fn size_categories_match_jpeg() {
        assert_eq!(size_category(0), 0);
        assert_eq!(size_category(1), 1);
        assert_eq!(size_category(-1), 1);
        assert_eq!(size_category(2), 2);
        assert_eq!(size_category(-3), 2);
        assert_eq!(size_category(255), 8);
        assert_eq!(size_category(-1024), 11);
    }

    #[test]
    fn shared_tables_roundtrip() {
        let dc = dc_code();
        let ac = ac_code();
        let mut w = BitWriter::new();
        dc.encode(3, &mut w);
        ac.encode(EOB, &mut w);
        ac.encode(ZRL, &mut w);
        ac.encode(0x23, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dc.decode(&mut r).unwrap().0, 3);
        assert_eq!(ac.decode(&mut r).unwrap().0, EOB);
        assert_eq!(ac.decode(&mut r).unwrap().0, ZRL);
        assert_eq!(ac.decode(&mut r).unwrap().0, 0x23);
    }

    #[test]
    fn eob_is_short() {
        let ac = ac_code();
        assert!(ac.code_len(EOB) <= 4, "EOB should be among the shortest");
    }

    #[test]
    fn invalid_stream_detected_or_exhausted() {
        let code = HuffmanCode::from_weights(&[1, 1]);
        let bytes: Vec<u8> = vec![];
        let mut r = BitReader::new(&bytes);
        assert!(code.decode(&mut r).is_none());
    }
}
