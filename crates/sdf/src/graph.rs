//! Synchronous dataflow (SDF) graph representation.
//!
//! An SDF graph (Lee & Messerschmitt, 1987) consists of *actors* connected by
//! *channels*. Every channel endpoint carries a constant *rate*: the number of
//! tokens produced or consumed per firing of the connected actor. Channels may
//! hold *initial tokens*. This is exactly the model of Section 3 of the paper;
//! the example of Fig. 2 is reproduced in the tests of this module.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::SdfError;

/// Index of an actor within its [`SdfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ActorId(pub usize);

/// Index of a channel within its [`SdfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChannelId(pub usize);

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// An SDF actor: a named computation with a worst-case execution time.
///
/// The execution time is expressed in platform clock cycles, the base time
/// unit of the design flow (paper §5). The value used by the analysis is the
/// WCET of the chosen implementation; the simulator may substitute measured
/// per-firing times.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Actor {
    name: String,
    execution_time: u64,
}

impl Actor {
    /// Creates an actor with the given name and execution time (cycles).
    pub fn new(name: impl Into<String>, execution_time: u64) -> Actor {
        Actor {
            name: name.into(),
            execution_time,
        }
    }

    /// The actor's name (unique within its graph).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Worst-case execution time in clock cycles.
    pub fn execution_time(&self) -> u64 {
        self.execution_time
    }

    /// Updates the execution time (used when a mapping selects a different
    /// implementation of the actor).
    pub fn set_execution_time(&mut self, cycles: u64) {
        self.execution_time = cycles;
    }
}

/// A directed SDF channel between two actor ports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Channel {
    name: String,
    src: ActorId,
    dst: ActorId,
    /// Tokens produced per firing of `src`.
    production_rate: u64,
    /// Tokens consumed per firing of `dst`.
    consumption_rate: u64,
    /// Tokens present on the channel in the initial state.
    initial_tokens: u64,
    /// Size of one token in bytes (used by the communication model to
    /// fragment tokens into 32-bit words; paper §4.2).
    token_size: u64,
}

impl Channel {
    /// The channel's name (unique within its graph).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Source (producing) actor.
    pub fn src(&self) -> ActorId {
        self.src
    }

    /// Destination (consuming) actor.
    pub fn dst(&self) -> ActorId {
        self.dst
    }

    /// Tokens produced per firing of the source actor.
    pub fn production_rate(&self) -> u64 {
        self.production_rate
    }

    /// Tokens consumed per firing of the destination actor.
    pub fn consumption_rate(&self) -> u64 {
        self.consumption_rate
    }

    /// Number of initial tokens.
    pub fn initial_tokens(&self) -> u64 {
        self.initial_tokens
    }

    /// Token size in bytes.
    pub fn token_size(&self) -> u64 {
        self.token_size
    }

    /// True if source and destination are the same actor.
    pub fn is_self_edge(&self) -> bool {
        self.src == self.dst
    }
}

/// A synchronous dataflow graph.
///
/// Graphs are immutable-by-convention after construction through
/// [`SdfGraphBuilder`]; analysis passes treat them as read-only, while
/// transformation passes (see [`crate::transform`]) build new graphs.
///
/// # Examples
///
/// The graph of paper Fig. 2:
///
/// ```
/// use mamps_sdf::graph::SdfGraphBuilder;
///
/// let mut b = SdfGraphBuilder::new("fig2");
/// let a = b.add_actor("A", 10);
/// let bb = b.add_actor("B", 5);
/// let c = b.add_actor("C", 7);
/// b.add_channel("a2b", a, 2, bb, 1);
/// b.add_channel("a2c", a, 1, c, 1);
/// b.add_channel("b2c", bb, 1, c, 2);
/// b.add_channel_with_tokens("selfA", a, 1, a, 1, 1);
/// let g = b.build().unwrap();
/// assert_eq!(g.actor_count(), 3);
/// assert_eq!(g.channel_count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdfGraph {
    name: String,
    actors: Vec<Actor>,
    channels: Vec<Channel>,
    /// Outgoing channel ids per actor (same order as insertion).
    #[serde(skip)]
    outgoing: Vec<Vec<ChannelId>>,
    /// Incoming channel ids per actor.
    #[serde(skip)]
    incoming: Vec<Vec<ChannelId>>,
}

impl SdfGraph {
    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Access an actor by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn actor(&self, id: ActorId) -> &Actor {
        &self.actors[id.0]
    }

    /// Access a channel by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.0]
    }

    /// Iterate over `(id, actor)` pairs.
    pub fn actors(&self) -> impl Iterator<Item = (ActorId, &Actor)> {
        self.actors.iter().enumerate().map(|(i, a)| (ActorId(i), a))
    }

    /// Iterate over `(id, channel)` pairs.
    pub fn channels(&self) -> impl Iterator<Item = (ChannelId, &Channel)> {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, c)| (ChannelId(i), c))
    }

    /// Ids of channels leaving `actor` (including self-edges).
    pub fn outgoing(&self, actor: ActorId) -> &[ChannelId] {
        &self.outgoing[actor.0]
    }

    /// Ids of channels entering `actor` (including self-edges).
    pub fn incoming(&self, actor: ActorId) -> &[ChannelId] {
        &self.incoming[actor.0]
    }

    /// Looks up an actor by name.
    pub fn actor_by_name(&self, name: &str) -> Option<ActorId> {
        self.actors.iter().position(|a| a.name == name).map(ActorId)
    }

    /// Looks up a channel by name.
    pub fn channel_by_name(&self, name: &str) -> Option<ChannelId> {
        self.channels
            .iter()
            .position(|c| c.name == name)
            .map(ChannelId)
    }

    /// Rebuilds the adjacency caches (needed after deserialization).
    pub fn rebuild_adjacency(&mut self) {
        let n = self.actors.len();
        self.outgoing = vec![Vec::new(); n];
        self.incoming = vec![Vec::new(); n];
        for (i, c) in self.channels.iter().enumerate() {
            self.outgoing[c.src.0].push(ChannelId(i));
            self.incoming[c.dst.0].push(ChannelId(i));
        }
    }

    /// Returns a mutable reference to an actor (execution-time updates only).
    pub fn actor_mut(&mut self, id: ActorId) -> &mut Actor {
        &mut self.actors[id.0]
    }

    /// True if the graph, viewed as undirected, is connected.
    ///
    /// A disconnected graph has no meaningful single repetition vector
    /// normalization, so most analyses require connectedness.
    pub fn is_connected(&self) -> bool {
        if self.actors.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.actors.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &c in &self.outgoing[v] {
                let w = self.channels[c.0].dst.0;
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
            for &c in &self.incoming[v] {
                let w = self.channels[c.0].src.0;
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }
}

/// Builder for [`SdfGraph`].
///
/// Checks name uniqueness, endpoint validity and non-zero rates at
/// [`build`](SdfGraphBuilder::build) time.
#[derive(Debug, Clone, Default)]
pub struct SdfGraphBuilder {
    name: String,
    actors: Vec<Actor>,
    channels: Vec<Channel>,
}

impl SdfGraphBuilder {
    /// Starts a new graph with the given name.
    pub fn new(name: impl Into<String>) -> SdfGraphBuilder {
        SdfGraphBuilder {
            name: name.into(),
            actors: Vec::new(),
            channels: Vec::new(),
        }
    }

    /// Adds an actor, returning its id.
    pub fn add_actor(&mut self, name: impl Into<String>, execution_time: u64) -> ActorId {
        self.actors.push(Actor::new(name, execution_time));
        ActorId(self.actors.len() - 1)
    }

    /// Adds a channel with no initial tokens and the default token size
    /// (4 bytes — one 32-bit word, the network-interface word size).
    pub fn add_channel(
        &mut self,
        name: impl Into<String>,
        src: ActorId,
        production_rate: u64,
        dst: ActorId,
        consumption_rate: u64,
    ) -> ChannelId {
        self.add_channel_full(name, src, production_rate, dst, consumption_rate, 0, 4)
    }

    /// Adds a channel with initial tokens and the default token size.
    pub fn add_channel_with_tokens(
        &mut self,
        name: impl Into<String>,
        src: ActorId,
        production_rate: u64,
        dst: ActorId,
        consumption_rate: u64,
        initial_tokens: u64,
    ) -> ChannelId {
        self.add_channel_full(
            name,
            src,
            production_rate,
            dst,
            consumption_rate,
            initial_tokens,
            4,
        )
    }

    /// Adds a channel specifying every attribute.
    #[allow(clippy::too_many_arguments)]
    pub fn add_channel_full(
        &mut self,
        name: impl Into<String>,
        src: ActorId,
        production_rate: u64,
        dst: ActorId,
        consumption_rate: u64,
        initial_tokens: u64,
        token_size: u64,
    ) -> ChannelId {
        self.channels.push(Channel {
            name: name.into(),
            src,
            dst,
            production_rate,
            consumption_rate,
            initial_tokens,
            token_size,
        });
        ChannelId(self.channels.len() - 1)
    }

    /// Validates and finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`SdfError::InvalidGraph`] if actor or channel names collide,
    /// a rate is zero, a token size is zero, or a channel endpoint is out of
    /// range.
    pub fn build(self) -> Result<SdfGraph, SdfError> {
        let mut names: HashMap<&str, ()> = HashMap::new();
        for a in &self.actors {
            if names.insert(a.name.as_str(), ()).is_some() {
                return Err(SdfError::InvalidGraph(format!(
                    "duplicate actor name `{}`",
                    a.name
                )));
            }
        }
        let mut cnames: HashMap<&str, ()> = HashMap::new();
        for c in &self.channels {
            if cnames.insert(c.name.as_str(), ()).is_some() {
                return Err(SdfError::InvalidGraph(format!(
                    "duplicate channel name `{}`",
                    c.name
                )));
            }
            if c.src.0 >= self.actors.len() || c.dst.0 >= self.actors.len() {
                return Err(SdfError::InvalidGraph(format!(
                    "channel `{}` references a non-existent actor",
                    c.name
                )));
            }
            if c.production_rate == 0 || c.consumption_rate == 0 {
                return Err(SdfError::InvalidGraph(format!(
                    "channel `{}` has a zero rate; SDF rates must be positive",
                    c.name
                )));
            }
            if c.token_size == 0 {
                return Err(SdfError::InvalidGraph(format!(
                    "channel `{}` has zero token size",
                    c.name
                )));
            }
        }
        let mut g = SdfGraph {
            name: self.name,
            actors: self.actors,
            channels: self.channels,
            outgoing: Vec::new(),
            incoming: Vec::new(),
        };
        g.rebuild_adjacency();
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the example graph of paper Fig. 2 (actors A, B, C; A has a
    /// stateful self-edge carrying one initial token).
    pub(crate) fn fig2_graph() -> SdfGraph {
        let mut b = SdfGraphBuilder::new("fig2");
        let a = b.add_actor("A", 10);
        let bb = b.add_actor("B", 5);
        let c = b.add_actor("C", 7);
        b.add_channel("a2b", a, 2, bb, 1);
        b.add_channel("a2c", a, 1, c, 1);
        b.add_channel("b2c", bb, 1, c, 2);
        b.add_channel_with_tokens("selfA", a, 1, a, 1, 1);
        b.build().unwrap()
    }

    #[test]
    fn build_fig2() {
        let g = fig2_graph();
        assert_eq!(g.actor_count(), 3);
        assert_eq!(g.channel_count(), 4);
        let a = g.actor_by_name("A").unwrap();
        assert_eq!(g.outgoing(a).len(), 3); // a2b, a2c, selfA
        assert_eq!(g.incoming(a).len(), 1); // selfA
        let self_a = g.channel_by_name("selfA").unwrap();
        assert!(g.channel(self_a).is_self_edge());
        assert_eq!(g.channel(self_a).initial_tokens(), 1);
    }

    #[test]
    fn connectedness() {
        let g = fig2_graph();
        assert!(g.is_connected());

        let mut b = SdfGraphBuilder::new("disc");
        b.add_actor("X", 1);
        b.add_actor("Y", 1);
        let g = b.build().unwrap();
        assert!(!g.is_connected());

        let empty = SdfGraphBuilder::new("empty").build().unwrap();
        assert!(empty.is_connected());
    }

    #[test]
    fn duplicate_actor_name_rejected() {
        let mut b = SdfGraphBuilder::new("dup");
        b.add_actor("A", 1);
        b.add_actor("A", 2);
        assert!(b.build().is_err());
    }

    #[test]
    fn duplicate_channel_name_rejected() {
        let mut b = SdfGraphBuilder::new("dup");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel("e", a, 1, c, 1);
        b.add_channel("e", a, 1, c, 1);
        assert!(b.build().is_err());
    }

    #[test]
    fn zero_rate_rejected() {
        let mut b = SdfGraphBuilder::new("zr");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel("e", a, 0, c, 1);
        assert!(b.build().is_err());
    }

    #[test]
    fn zero_token_size_rejected() {
        let mut b = SdfGraphBuilder::new("zt");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel_full("e", a, 1, c, 1, 0, 0);
        assert!(b.build().is_err());
    }

    #[test]
    fn lookup_by_name() {
        let g = fig2_graph();
        assert!(g.actor_by_name("B").is_some());
        assert!(g.actor_by_name("nope").is_none());
        assert!(g.channel_by_name("b2c").is_some());
        assert!(g.channel_by_name("nope").is_none());
    }

    #[test]
    fn rebuild_adjacency_is_idempotent() {
        let g = fig2_graph();
        let mut g2 = g.clone();
        g2.rebuild_adjacency();
        assert_eq!(g2.outgoing(ActorId(0)), g.outgoing(ActorId(0)));
        assert_eq!(g2.incoming(ActorId(2)), g.incoming(ActorId(2)));
    }
}
