//! # mamps-sdf — synchronous dataflow graphs and analysis
//!
//! This crate provides the SDF substrate of the MAMPS design-flow
//! reproduction (Jordans et al., *An Automated Flow to Map Throughput
//! Constrained Applications to a MPSoC*, PPES 2011):
//!
//! * [`graph`] — SDF graphs: actors, channels, rates, initial tokens.
//! * [`repetition`] — repetition vectors and sample-rate consistency.
//! * [`liveness`] — deadlock-freedom via abstract iteration execution.
//! * [`state_space`] — worst-case throughput by self-timed state-space
//!   exploration (the SDF3 algorithm used by the paper).
//! * [`hsdf`] / [`mcr`] — HSDF conversion and exact max-cycle-ratio
//!   analysis, an independent cross-check of the state-space results.
//! * [`buffer`] — deadlock-free and throughput-constrained buffer sizing.
//! * [`transform`] — self-edges, buffer-capacity reverse channels and
//!   static-order constraint encodings.
//! * [`model`] — the application model joining the graph with per-actor
//!   implementation metadata (WCET, memory sizes, argument bindings).
//! * [`gen`] — seeded synthetic scenario generation (topology families,
//!   controlled rates/WCETs) and the shared test generators; the
//!   `testkit` feature adds proptest strategies on top.
//! * [`dot`] — Graphviz export.
//!
//! ## Example
//!
//! ```
//! use mamps_sdf::graph::SdfGraphBuilder;
//! use mamps_sdf::state_space::{throughput, AnalysisOptions};
//!
//! let mut b = SdfGraphBuilder::new("demo");
//! let producer = b.add_actor("producer", 4);
//! let consumer = b.add_actor("consumer", 6);
//! b.add_channel("data", producer, 1, consumer, 1);
//! let graph = b.build()?;
//!
//! let result = throughput(&graph, &AnalysisOptions::default())?;
//! assert_eq!(result.cycles_per_iteration(), 6.0);
//! # Ok::<(), mamps_sdf::error::SdfError>(())
//! ```

pub mod buffer;
pub mod cache;
pub mod dot;
pub mod error;
pub mod gen;
pub mod graph;
pub mod hsdf;
pub mod liveness;
pub mod mcr;
pub mod model;
pub mod passes;
pub mod ratio;
pub mod repetition;
pub mod state_space;
pub mod transform;
pub mod xml;
pub mod xmlutil;

pub use cache::{CacheEntry, CacheStats, GlobalAnalysisCache, GraphFingerprint};
pub use error::SdfError;
pub use gen::{Family, GenConfig};
pub use graph::{Actor, ActorId, Channel, ChannelId, SdfGraph, SdfGraphBuilder};
pub use model::{ApplicationModel, ThroughputConstraint};
pub use passes::{PassCache, PassEntry, PassReport, PassRunner, PassStat};
pub use ratio::Ratio;
pub use repetition::{repetition_vector, RepetitionVector};
pub use state_space::{throughput, AnalysisOptions, ThroughputResult};
