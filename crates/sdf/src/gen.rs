//! Seeded synthetic SDF scenario generation.
//!
//! A TGFF-style generator producing [`ApplicationModel`]s from composable
//! topology [`Family`]s — chains, split-joins, trees, and cyclic graphs
//! with back-edge initial tokens — with controlled rate ratios, WCET
//! ranges and actor counts. Everything is derived deterministically from
//! [`GenConfig::seed`] via the vendored SplitMix64 generator, so the same
//! configuration always produces byte-identical interchange XML: scenarios
//! can be referenced by `(family, seed)` alone, regenerated anywhere, and
//! diffed across machines.
//!
//! Generated graphs are *consistent and live by construction*:
//!
//! * every actor draws a repetition count `q[a]`, and each channel
//!   `(s, d)` gets rates `p = q[d]/g`, `c = q[s]/g` with
//!   `g = gcd(q[s], q[d])`, so `q[s]·p == q[d]·c` balances exactly and
//!   the drawn `q` *is* the (scaled) repetition vector;
//! * acyclic families carry no initial tokens (DAGs are always live);
//!   the cyclic family's back edge carries one full iteration of tokens
//!   (`q[dst]·c`), which is exactly what its consumer needs per
//!   iteration — the cycle can always complete an iteration and refills
//!   itself.
//!
//! The module doubles as the shared **testkit**: [`pipeline_app`]
//! replaces the per-test ad-hoc generators that used to be copied into
//! every integration test, and the `strategies` submodule (behind the
//! `testkit` feature) wraps the generator in proptest strategies.
//!
//! ## Example
//!
//! ```
//! use mamps_sdf::gen::{generate, Family, GenConfig};
//! use mamps_sdf::repetition::repetition_vector;
//!
//! let cfg = GenConfig::new(42, Family::Cyclic);
//! let app = generate(&cfg)?;
//! // Consistent by construction.
//! repetition_vector(app.graph())?;
//! // Deterministic: the same seed regenerates the same model.
//! assert_eq!(mamps_sdf::xml::application_to_xml(&app),
//!            mamps_sdf::xml::application_to_xml(&generate(&cfg)?));
//! # Ok::<(), mamps_sdf::error::SdfError>(())
//! ```

use std::fmt;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::SdfError;
use crate::graph::SdfGraphBuilder;
use crate::model::{ApplicationModel, HomogeneousModelBuilder, ThroughputConstraint};
use crate::ratio::gcd;

/// A topology family the generator can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// A linear pipeline `a0 → a1 → … → a(n-1)`.
    Chain,
    /// A source fanning out to 2–4 parallel chain branches that re-join
    /// at a sink (degenerates to a chain below 4 actors).
    SplitJoin,
    /// A random out-tree: every actor but the root consumes from one
    /// earlier actor.
    Tree,
    /// A chain closed by a back edge whose initial tokens hold one full
    /// iteration, so the cycle is live.
    Cyclic,
}

impl Family {
    /// Every family, in the order `mixed` generation cycles through.
    pub const ALL: [Family; 4] = [
        Family::Chain,
        Family::SplitJoin,
        Family::Tree,
        Family::Cyclic,
    ];

    /// Identifier-safe name, used in generated actor/file names.
    pub fn slug(&self) -> &'static str {
        match self {
            Family::Chain => "chain",
            Family::SplitJoin => "split_join",
            Family::Tree => "tree",
            Family::Cyclic => "cyclic",
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Family::Chain => "chain",
            Family::SplitJoin => "split-join",
            Family::Tree => "tree",
            Family::Cyclic => "cyclic",
        })
    }
}

impl FromStr for Family {
    type Err = String;

    fn from_str(s: &str) -> Result<Family, String> {
        match s {
            "chain" => Ok(Family::Chain),
            "split-join" | "split_join" | "splitjoin" => Ok(Family::SplitJoin),
            "tree" => Ok(Family::Tree),
            "cyclic" => Ok(Family::Cyclic),
            other => Err(format!(
                "unknown family `{other}` (available: chain, split-join, tree, cyclic)"
            )),
        }
    }
}

/// Parameters of one generated scenario. Everything observable is a pure
/// function of this configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenConfig {
    /// Master seed; scenarios are named `{family}_s{seed}`.
    pub seed: u64,
    /// Topology family.
    pub family: Family,
    /// Actor count (clamped to at least 2).
    pub actors: usize,
    /// Inclusive WCET range, in cycles (clamped to at least 1).
    pub wcet_min: u64,
    /// Inclusive WCET upper bound (clamped to at least `wcet_min`).
    pub wcet_max: u64,
    /// Upper bound on per-actor repetition counts; controls how
    /// multi-rate the channels get. 1 produces homogeneous graphs.
    pub max_rate: u64,
    /// Token sizes (bytes) channels draw from; empty falls back to 4.
    pub token_sizes: Vec<u64>,
    /// Whether a stateful self-edge (rate 1/1, one initial token) may be
    /// added to a random actor.
    pub self_edge: bool,
    /// `Some(k)`: attach a throughput constraint with slack factor `k`
    /// (clamped to at least 2) over the sequential-schedule bound, so the
    /// constraint is finite but satisfiable on a single tile. `None`: no
    /// constraint.
    pub constraint_slack: Option<u64>,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            seed: 1,
            family: Family::Chain,
            actors: 4,
            wcet_min: 10,
            wcet_max: 400,
            max_rate: 3,
            token_sizes: vec![4, 16, 64],
            self_edge: false,
            constraint_slack: None,
        }
    }
}

impl GenConfig {
    /// A default configuration for `(seed, family)`.
    pub fn new(seed: u64, family: Family) -> GenConfig {
        GenConfig {
            seed,
            family,
            ..GenConfig::default()
        }
    }
}

/// Generates the application model described by `cfg`.
///
/// Deterministic: equal configurations produce structurally equal models
/// (and therefore byte-identical interchange XML). The result is always
/// consistent and live, see the module docs.
///
/// # Errors
///
/// Propagates graph- and model-validation errors; with the invariants the
/// generator maintains these indicate a bug in the generator itself.
pub fn generate(cfg: &GenConfig) -> Result<ApplicationModel, SdfError> {
    let n = cfg.actors.max(2);
    let family_index = Family::ALL
        .iter()
        .position(|f| *f == cfg.family)
        .expect("Family::ALL covers every variant") as u64;
    // Mix the family into the high bits so e.g. chain_s7 and tree_s7
    // draw unrelated streams (SplitMix64 steps by a constant, so adding
    // small offsets to the seed would merely shift the same stream).
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ ((family_index + 1) << 60));
    let name = format!("{}_s{}", cfg.family.slug(), cfg.seed);

    // Topology: directed edges (src, dst, is_back_edge) over 0..n.
    let mut edges: Vec<(usize, usize, bool)> = Vec::new();
    let chain = |edges: &mut Vec<(usize, usize, bool)>| {
        for i in 0..n - 1 {
            edges.push((i, i + 1, false));
        }
    };
    match cfg.family {
        Family::Chain => chain(&mut edges),
        Family::SplitJoin if n < 4 => chain(&mut edges),
        Family::SplitJoin => {
            let middles = n - 2;
            let k = rng.gen_range(2..=middles.min(4));
            let mut branches: Vec<Vec<usize>> = vec![Vec::new(); k];
            for (j, actor) in (1..n - 1).enumerate() {
                branches[j % k].push(actor);
            }
            for branch in &branches {
                edges.push((0, branch[0], false));
                for w in branch.windows(2) {
                    edges.push((w[0], w[1], false));
                }
                edges.push((branch[branch.len() - 1], n - 1, false));
            }
        }
        Family::Tree => {
            for i in 1..n {
                edges.push((rng.gen_range(0..i), i, false));
            }
        }
        Family::Cyclic => {
            chain(&mut edges);
            edges.push((n - 1, 0, true));
        }
    }

    // Repetition counts first, rates derived from them: consistency by
    // construction (see module docs).
    let max_rate = cfg.max_rate.max(1);
    let q: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=max_rate)).collect();
    let wcet_min = cfg.wcet_min.max(1);
    let wcet_max = cfg.wcet_max.max(wcet_min);
    let wcets: Vec<u64> = (0..n).map(|_| rng.gen_range(wcet_min..=wcet_max)).collect();

    let mut b = SdfGraphBuilder::new(&name);
    let ids: Vec<_> = (0..n)
        .map(|i| b.add_actor(format!("{name}_a{i}"), wcets[i]))
        .collect();
    let default_sizes = [4u64];
    let sizes: &[u64] = if cfg.token_sizes.is_empty() {
        &default_sizes
    } else {
        &cfg.token_sizes
    };
    let mut traffic_words = 0u64;
    for (j, &(s, d, back)) in edges.iter().enumerate() {
        let g = gcd(q[s], q[d]);
        let (p, c) = (q[d] / g, q[s] / g);
        let tokens = if back { q[d] * c } else { 0 };
        let size = sizes[rng.gen_range(0..sizes.len())];
        traffic_words += q[s] * p * size.div_ceil(4);
        b.add_channel_full(format!("{name}_e{j}"), ids[s], p, ids[d], c, tokens, size);
    }
    if cfg.self_edge && rng.gen::<bool>() {
        let a = rng.gen_range(0..n);
        b.add_channel_full(format!("{name}_self"), ids[a], 1, ids[a], 1, 1, 4);
    }
    let graph = b.build()?;

    // A slack factor over the sequential bound (all firings serialized,
    // every token paying a pessimistic per-word cost) keeps generated
    // constraints finite yet satisfiable even on one tile.
    let constraint = cfg.constraint_slack.map(|slack| {
        let work: u64 = (0..n).map(|i| q[i] * wcets[i]).sum();
        ThroughputConstraint {
            iterations: 1,
            cycles: slack.max(2) * (work + 40 * traffic_words).max(1),
        }
    });

    let mut mb = HomogeneousModelBuilder::new("microblaze");
    for (i, &wcet) in wcets.iter().enumerate() {
        let imem = 1024 + 256 * rng.gen_range(0..8u64);
        let dmem = 64 + 32 * rng.gen_range(0..8u64);
        mb.actor(format!("{name}_a{i}"), wcet, imem, dmem);
    }
    mb.finish(graph, constraint)
}

/// The shared deterministic pipeline generator the integration tests use
/// (one homogeneous `microblaze` implementation per actor, actors named
/// `{name}_a{i}`, channels `{name}_e{i}`).
///
/// `rates[i % rates.len()]` is used for both ends of channel `i` (so the
/// repetition vector stays all-ones); an empty `rates` slice means
/// unit rates. WCETs are clamped to at least 1.
pub fn pipeline_app(
    name: &str,
    wcets: &[u64],
    token_size: u64,
    rates: &[u64],
    constraint: Option<ThroughputConstraint>,
) -> ApplicationModel {
    assert!(!wcets.is_empty(), "pipeline_app needs at least one actor");
    let n = wcets.len();
    let rate = |i: usize| {
        if rates.is_empty() {
            1
        } else {
            rates[i % rates.len()].max(1)
        }
    };
    let mut b = SdfGraphBuilder::new(name);
    let ids: Vec<_> = (0..n)
        .map(|i| b.add_actor(format!("{name}_a{i}"), 1))
        .collect();
    for i in 0..n - 1 {
        let r = rate(i);
        b.add_channel_full(
            format!("{name}_e{i}"),
            ids[i],
            r,
            ids[i + 1],
            r,
            0,
            token_size.max(1),
        );
    }
    let g = b.build().expect("pipeline topology is always valid");
    let mut mb = HomogeneousModelBuilder::new("microblaze");
    for (i, &w) in wcets.iter().enumerate() {
        mb.actor(format!("{name}_a{i}"), w.max(1), 4096, 512);
    }
    mb.finish(g, constraint)
        .expect("homogeneous pipeline model is always valid")
}

/// Proptest strategies over the generator, for property tests across the
/// workspace (`testkit` feature).
#[cfg(feature = "testkit")]
pub mod strategies {
    use super::{generate, Family, GenConfig};
    use crate::model::ApplicationModel;
    use proptest::prelude::*;

    /// Any topology family.
    pub fn family() -> impl Strategy<Value = Family> {
        (0usize..Family::ALL.len()).prop_map(|i| Family::ALL[i])
    }

    /// Small scenario configurations across every family, with
    /// multi-rate channels, occasional self-edges and occasional
    /// throughput constraints: the broadest shape the interchange format
    /// must round-trip.
    pub fn config() -> impl Strategy<Value = GenConfig> {
        (
            any::<u64>(),
            family(),
            2usize..8,
            1u64..=4,
            any::<bool>(),
            proptest::option::of(2u64..6),
        )
            .prop_map(
                |(seed, family, actors, max_rate, self_edge, constraint_slack)| GenConfig {
                    seed,
                    family,
                    actors,
                    max_rate,
                    self_edge,
                    constraint_slack,
                    ..GenConfig::default()
                },
            )
    }

    /// Like [`config`] but restricted to unconstrained scenarios —
    /// suitable for differential tests that must map and simulate every
    /// generated scenario successfully.
    pub fn flow_config() -> impl Strategy<Value = GenConfig> {
        config().prop_map(|mut c| {
            c.constraint_slack = None;
            c
        })
    }

    /// A generated application model from [`config`].
    pub fn application() -> impl Strategy<Value = ApplicationModel> {
        config().prop_map(|c| generate(&c).expect("generated configs always build"))
    }

    /// A generated application model from [`flow_config`].
    pub fn flow_application() -> impl Strategy<Value = ApplicationModel> {
        flow_config().prop_map(|c| generate(&c).expect("generated configs always build"))
    }

    /// WCET vectors for [`super::pipeline_app`]-style tests.
    pub fn wcets(len: core::ops::Range<usize>) -> impl Strategy<Value = Vec<u64>> {
        proptest::collection::vec(5u64..300, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liveness::check_liveness;
    use crate::repetition::repetition_vector;

    #[test]
    fn family_round_trips_through_strings() {
        for f in Family::ALL {
            assert_eq!(f.to_string().parse::<Family>().unwrap(), f);
            assert_eq!(f.slug().parse::<Family>().unwrap(), f);
        }
        assert!("ring".parse::<Family>().is_err());
    }

    #[test]
    fn every_family_is_consistent_and_live() {
        for f in Family::ALL {
            for seed in 0..20 {
                let mut cfg = GenConfig::new(seed, f);
                cfg.actors = 2 + (seed as usize % 7);
                cfg.self_edge = seed % 2 == 0;
                cfg.constraint_slack = if seed % 3 == 0 { Some(3) } else { None };
                let app = generate(&cfg).unwrap();
                let q = repetition_vector(app.graph()).unwrap();
                for (_, ch) in app.graph().channels() {
                    assert_eq!(
                        q.of(ch.src()) * ch.production_rate(),
                        q.of(ch.dst()) * ch.consumption_rate(),
                        "{f} seed {seed}: channel {} unbalanced",
                        ch.name()
                    );
                }
                check_liveness(app.graph()).unwrap();
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig {
            self_edge: true,
            constraint_slack: Some(4),
            ..GenConfig::new(99, Family::SplitJoin)
        };
        let a = crate::xml::application_to_xml(&generate(&cfg).unwrap());
        let b = crate::xml::application_to_xml(&generate(&cfg).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn families_differ_for_equal_seed() {
        let chain = generate(&GenConfig::new(7, Family::Chain)).unwrap();
        let tree = generate(&GenConfig::new(7, Family::Tree)).unwrap();
        assert_ne!(
            crate::xml::application_to_xml(&chain),
            crate::xml::application_to_xml(&tree)
        );
    }

    #[test]
    fn cyclic_back_edge_holds_one_iteration() {
        let app = generate(&GenConfig::new(3, Family::Cyclic)).unwrap();
        let q = repetition_vector(app.graph()).unwrap();
        let back = app
            .graph()
            .channels()
            .find(|(_, ch)| !ch.is_self_edge() && ch.initial_tokens() > 0)
            .map(|(_, ch)| ch)
            .expect("cyclic family always has a token-carrying back edge");
        assert_eq!(
            back.initial_tokens(),
            q.of(back.dst()) * back.consumption_rate()
        );
    }

    #[test]
    fn pipeline_app_matches_documented_shape() {
        let app = pipeline_app("p", &[10, 20, 30], 16, &[2], None);
        assert_eq!(app.graph().actors().count(), 3);
        assert_eq!(app.graph().channels().count(), 2);
        let q = repetition_vector(app.graph()).unwrap();
        assert!(q.entries().iter().all(|&v| v == 1));
        assert!(app.graph().actor_by_name("p_a1").is_some());
        assert!(app.graph().channel_by_name("p_e0").is_some());
    }
}
