//! Graphviz DOT export for SDF graphs.

use std::fmt::Write as _;

use crate::graph::SdfGraph;

/// Renders `graph` in Graphviz DOT syntax.
///
/// Actors become boxes labelled `name (exec)`; channels become edges
/// labelled with their rates, with initial tokens shown as `●n`.
///
/// # Examples
///
/// ```
/// use mamps_sdf::graph::SdfGraphBuilder;
/// use mamps_sdf::dot::to_dot;
///
/// let mut b = SdfGraphBuilder::new("g");
/// let a = b.add_actor("A", 1);
/// let c = b.add_actor("B", 2);
/// b.add_channel("e", a, 2, c, 1);
/// let g = b.build().unwrap();
/// let dot = to_dot(&g);
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("A"));
/// ```
pub fn to_dot(graph: &SdfGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", graph.name());
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    for (id, a) in graph.actors() {
        let _ = writeln!(
            out,
            "  {} [label=\"{}\\n({} cy)\"];",
            id.0,
            a.name(),
            a.execution_time()
        );
    }
    for (_, c) in graph.channels() {
        let tokens = if c.initial_tokens() > 0 {
            format!(" \\u25cf{}", c.initial_tokens())
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  {} -> {} [taillabel=\"{}\" headlabel=\"{}\" label=\"{}{}\"];",
            c.src().0,
            c.dst().0,
            c.production_rate(),
            c.consumption_rate(),
            c.name(),
            tokens
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SdfGraphBuilder;

    #[test]
    fn dot_contains_all_elements() {
        let mut b = SdfGraphBuilder::new("t");
        let a = b.add_actor("Alpha", 3);
        let c = b.add_actor("Beta", 4);
        b.add_channel_with_tokens("link", a, 2, c, 5, 7);
        let g = b.build().unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("Alpha"));
        assert!(dot.contains("Beta"));
        assert!(dot.contains("link"));
        assert!(dot.contains('7'));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn empty_graph_still_valid() {
        let g = SdfGraphBuilder::new("empty").build().unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("digraph"));
        assert!(dot.ends_with("}\n"));
    }
}
