//! Maximum cycle ratio (MCR) analysis of HSDF graphs.
//!
//! For a strongly connected HSDF graph the worst-case throughput equals
//! `1 / MCR` where `MCR = max over cycles C of W(C) / T(C)`, `W` summing the
//! execution times along the cycle and `T` the initial tokens (delays).
//! This module implements Lawler-style iterated cycle improvement with exact
//! rational arithmetic: starting from any positive-ratio cycle, repeatedly
//! test (via longest-path relaxation) whether a cycle with a strictly larger
//! ratio exists and jump to it. The candidate ratios form a finite strictly
//! increasing chain, so termination is guaranteed, and the result is exact.
//!
//! The MCR analysis serves as an independent cross-check of the state-space
//! throughput analysis ([`crate::state_space`]); the two are compared in
//! integration and property tests.

use crate::error::SdfError;
use crate::graph::{ActorId, SdfGraph};
use crate::ratio::Ratio;
use crate::transform::add_missing_self_edges;

/// A critical cycle: the actors along the cycle achieving the MCR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalCycle {
    /// Actors along the cycle, in order.
    pub actors: Vec<ActorId>,
    /// Total execution time along the cycle.
    pub weight: u64,
    /// Total delay tokens along the cycle.
    pub tokens: u64,
}

/// Result of an MCR analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct McrResult {
    /// The maximum cycle ratio (cycles per iteration along the bottleneck).
    pub ratio: Ratio,
    /// A cycle achieving the ratio.
    pub critical_cycle: CriticalCycle,
}

impl McrResult {
    /// Throughput implied by the MCR: `1 / ratio` iterations per cycle.
    pub fn throughput(&self) -> Ratio {
        self.ratio.recip()
    }
}

/// Computes the maximum cycle ratio of a *homogeneous* SDF graph.
///
/// Returns `Ok(None)` when the graph has no cycle (its rate is unconstrained).
///
/// # Errors
///
/// * [`SdfError::InvalidGraph`] if some rate differs from one (convert with
///   [`crate::hsdf::to_hsdf`] first).
/// * [`SdfError::Deadlock`] if a cycle without any initial token exists.
pub fn max_cycle_ratio(graph: &SdfGraph) -> Result<Option<McrResult>, SdfError> {
    for (_, ch) in graph.channels() {
        if ch.production_rate() != 1 || ch.consumption_rate() != 1 {
            return Err(SdfError::InvalidGraph(format!(
                "channel `{}` is not homogeneous; run an HSDF conversion first",
                ch.name()
            )));
        }
    }
    if let Some(cycle) = zero_token_cycle(graph) {
        let names: Vec<&str> = cycle.iter().map(|&a| graph.actor(a).name()).collect();
        return Err(SdfError::Deadlock(format!(
            "token-free cycle: {}",
            names.join(" -> ")
        )));
    }

    // Find an initial cycle: any positive cycle at lambda slightly below any
    // cycle's ratio. Using lambda = -1 makes every cycle with weight >= 0
    // positive (w(C) + T(C) > 0 since T(C) >= 1).
    let mut current = match positive_cycle(graph, Ratio::from_int(-1)) {
        Some(c) => cycle_info(graph, &c),
        None => return Ok(None), // acyclic
    };
    loop {
        let lambda = Ratio::new(current.weight as i128, current.tokens as i128);
        match positive_cycle(graph, lambda) {
            Some(c) => {
                let info = cycle_info(graph, &c);
                debug_assert!(
                    Ratio::new(info.weight as i128, info.tokens as i128) > lambda,
                    "cycle improvement must strictly increase the ratio"
                );
                current = info;
            }
            None => {
                return Ok(Some(McrResult {
                    ratio: lambda,
                    critical_cycle: current,
                }));
            }
        }
    }
}

/// Convenience: throughput of an arbitrary SDF graph via HSDF + MCR.
///
/// Auto-concurrency is excluded by adding single-token self-edges to actors
/// lacking one (mirroring the default of the state-space analysis).
///
/// # Errors
///
/// Propagates conversion and MCR errors; returns
/// [`SdfError::AnalysisLimit`] if the graph is acyclic even after adding
/// self-edges (cannot happen for non-empty graphs) or all execution times
/// are zero.
pub fn mcr_throughput(graph: &SdfGraph) -> Result<Ratio, SdfError> {
    let bounded = add_missing_self_edges(graph);
    let hsdf = crate::hsdf::to_hsdf(&bounded)?;
    match max_cycle_ratio(hsdf.graph())? {
        Some(r) if !r.ratio.is_zero() => Ok(r.throughput()),
        _ => Err(SdfError::AnalysisLimit(
            "throughput unbounded: no cycle with positive weight".into(),
        )),
    }
}

/// Detects a cycle consisting solely of token-free channels.
fn zero_token_cycle(graph: &SdfGraph) -> Option<Vec<ActorId>> {
    let n = graph.actor_count();
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut state = vec![0u8; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        // Iterative DFS over token-free edges.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        state[start] = 1;
        while let Some(&(v, cursor)) = stack.last() {
            let out = graph.outgoing(ActorId(v));
            if cursor >= out.len() {
                state[v] = 2;
                stack.pop();
                continue;
            }
            stack.last_mut().expect("non-empty").1 += 1;
            let ch = graph.channel(out[cursor]);
            if ch.initial_tokens() > 0 {
                continue;
            }
            let w = ch.dst().0;
            if state[w] == 1 {
                // Found a cycle: unwind from v back to w.
                let mut cycle = vec![ActorId(w)];
                let mut cur = v;
                while cur != w {
                    cycle.push(ActorId(cur));
                    cur = parent[cur].expect("on-stack nodes have parents");
                }
                cycle.reverse();
                return Some(cycle);
            }
            if state[w] == 0 {
                state[w] = 1;
                parent[w] = Some(v);
                stack.push((w, 0));
            }
        }
    }
    None
}

/// Longest-path relaxation with edge value `w(src) - lambda * tokens`;
/// returns a cycle with strictly positive total value if one exists.
fn positive_cycle(graph: &SdfGraph, lambda: Ratio) -> Option<Vec<ActorId>> {
    let n = graph.actor_count();
    if n == 0 {
        return None;
    }
    let mut dist: Vec<Ratio> = vec![Ratio::ZERO; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    let mut changed_node: Option<usize> = None;
    for round in 0..=n {
        let mut changed = false;
        for (_, ch) in graph.channels() {
            let u = ch.src().0;
            let v = ch.dst().0;
            let w = Ratio::from_int(graph.actor(ch.src()).execution_time() as i128)
                - lambda * Ratio::from_int(ch.initial_tokens() as i128);
            let cand = dist[u] + w;
            if cand > dist[v] {
                dist[v] = cand;
                pred[v] = Some(u);
                changed = true;
                if round == n {
                    changed_node = Some(v);
                }
            }
        }
        if !changed {
            return None;
        }
    }
    // A relaxation in round n proves a positive cycle reachable through
    // `changed_node`; walk predecessors n steps to land on the cycle.
    let mut v = changed_node.expect("changed in final round");
    for _ in 0..n {
        v = pred[v].expect("relaxed nodes have predecessors");
    }
    let mut cycle = vec![v];
    let mut cur = pred[v].expect("cycle nodes have predecessors");
    while cur != v {
        cycle.push(cur);
        cur = pred[cur].expect("cycle nodes have predecessors");
    }
    cycle.reverse();
    Some(cycle.into_iter().map(ActorId).collect())
}

/// Computes weight and token totals of a cycle given its actor sequence.
fn cycle_info(graph: &SdfGraph, cycle: &[ActorId]) -> CriticalCycle {
    let mut weight = 0u64;
    let mut tokens = 0u64;
    for (idx, &u) in cycle.iter().enumerate() {
        let v = cycle[(idx + 1) % cycle.len()];
        weight += graph.actor(u).execution_time();
        // Among parallel edges u -> v pick the one with fewest tokens (the
        // binding constraint, consistent with the HSDF construction).
        let t = graph
            .outgoing(u)
            .iter()
            .filter(|&&c| graph.channel(c).dst() == v)
            .map(|&c| graph.channel(c).initial_tokens())
            .min()
            .expect("cycle edges exist");
        tokens += t;
    }
    CriticalCycle {
        actors: cycle.to_vec(),
        weight,
        tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SdfGraphBuilder;
    use crate::state_space::{throughput, AnalysisOptions};

    #[test]
    fn simple_cycle_ratio() {
        let mut b = SdfGraphBuilder::new("c");
        let a = b.add_actor("A", 3);
        let c = b.add_actor("B", 7);
        b.add_channel_with_tokens("f", a, 1, c, 1, 1);
        b.add_channel("r", c, 1, a, 1);
        let g = b.build().unwrap();
        let r = max_cycle_ratio(&g).unwrap().unwrap();
        assert_eq!(r.ratio, Ratio::from_int(10));
        assert_eq!(r.throughput(), Ratio::new(1, 10));
        assert_eq!(r.critical_cycle.weight, 10);
        assert_eq!(r.critical_cycle.tokens, 1);
    }

    #[test]
    fn two_cycles_max_taken() {
        // Cycle 1: A-B (weight 4, tokens 1, ratio 4).
        // Cycle 2: A-C (weight 9, tokens 2, ratio 4.5) <- critical.
        let mut b = SdfGraphBuilder::new("two");
        let a = b.add_actor("A", 1);
        let bb = b.add_actor("B", 3);
        let c = b.add_actor("C", 8);
        b.add_channel_with_tokens("ab", a, 1, bb, 1, 1);
        b.add_channel("ba", bb, 1, a, 1);
        b.add_channel_with_tokens("ac", a, 1, c, 1, 2);
        b.add_channel("ca", c, 1, a, 1);
        let g = b.build().unwrap();
        let r = max_cycle_ratio(&g).unwrap().unwrap();
        assert_eq!(r.ratio, Ratio::new(9, 2));
    }

    #[test]
    fn token_free_cycle_is_deadlock() {
        let mut b = SdfGraphBuilder::new("dead");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel("f", a, 1, c, 1);
        b.add_channel("r", c, 1, a, 1);
        let g = b.build().unwrap();
        assert!(matches!(max_cycle_ratio(&g), Err(SdfError::Deadlock(_))));
    }

    #[test]
    fn acyclic_graph_has_no_ratio() {
        let mut b = SdfGraphBuilder::new("dag");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel("e", a, 1, c, 1);
        let g = b.build().unwrap();
        assert_eq!(max_cycle_ratio(&g).unwrap(), None);
    }

    #[test]
    fn non_homogeneous_rejected() {
        let mut b = SdfGraphBuilder::new("nh");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel("e", a, 2, c, 1);
        let g = b.build().unwrap();
        assert!(matches!(
            max_cycle_ratio(&g),
            Err(SdfError::InvalidGraph(_))
        ));
    }

    #[test]
    fn mcr_matches_state_space_on_cycle() {
        let mut b = SdfGraphBuilder::new("x");
        let a = b.add_actor("A", 5);
        let c = b.add_actor("B", 2);
        let d = b.add_actor("C", 4);
        b.add_channel_with_tokens("ab", a, 1, c, 1, 1);
        b.add_channel("bc", c, 1, d, 1);
        b.add_channel("ca", d, 1, a, 1);
        let g = b.build().unwrap();
        let ss = throughput(&g, &AnalysisOptions::default()).unwrap();
        let mcr = mcr_throughput(&g).unwrap();
        assert_eq!(ss.iterations_per_cycle, mcr);
    }

    #[test]
    fn mcr_matches_state_space_multirate() {
        let mut b = SdfGraphBuilder::new("mr");
        let a = b.add_actor("A", 4);
        let c = b.add_actor("B", 3);
        b.add_channel("e", a, 2, c, 1);
        let g = b.build().unwrap();
        let ss = throughput(&g, &AnalysisOptions::default()).unwrap();
        let mcr = mcr_throughput(&g).unwrap();
        assert_eq!(ss.iterations_per_cycle, mcr);
    }

    #[test]
    fn mcr_matches_state_space_fig2() {
        let mut b = SdfGraphBuilder::new("fig2");
        let a = b.add_actor("A", 10);
        let bb = b.add_actor("B", 5);
        let c = b.add_actor("C", 7);
        b.add_channel("a2b", a, 2, bb, 1);
        b.add_channel("a2c", a, 1, c, 1);
        b.add_channel("b2c", bb, 1, c, 2);
        b.add_channel_with_tokens("selfA", a, 1, a, 1, 1);
        let g = b.build().unwrap();
        let ss = throughput(&g, &AnalysisOptions::default()).unwrap();
        let mcr = mcr_throughput(&g).unwrap();
        assert_eq!(ss.iterations_per_cycle, mcr);
    }

    #[test]
    fn parallel_edges_pick_tightest() {
        let mut b = SdfGraphBuilder::new("par");
        let a = b.add_actor("A", 2);
        let c = b.add_actor("B", 2);
        b.add_channel_with_tokens("f1", a, 1, c, 1, 1);
        b.add_channel_with_tokens("f2", a, 1, c, 1, 5);
        b.add_channel_with_tokens("r", c, 1, a, 1, 0);
        let g = b.build().unwrap();
        let r = max_cycle_ratio(&g).unwrap().unwrap();
        // Tight cycle uses f1 (1 token): ratio 4/1.
        assert_eq!(r.ratio, Ratio::from_int(4));
    }
}
