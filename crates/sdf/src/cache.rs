//! Global, thread-safe memoization of throughput analyses — across
//! graphs, runs, threads, and (through the serializable entries)
//! processes.
//!
//! The design flow's cost is dominated by state-space throughput analysis
//! of expanded interference graphs, and a DSE sweep re-pays that cost at
//! every design point even when different points land on identical
//! expanded graphs (common across tile counts, interconnects, and
//! admission orders). [`GlobalAnalysisCache`] keys every analysis by
//!
//! * a **canonical-JSON graph hash** ([`GraphFingerprint`]): the graph is
//!   canonicalized (actors and channels sorted by name, channel endpoints
//!   expressed as canonical actor ranks) into a [`serde::Value`] tree and
//!   hashed with the pinned [`serde::stable_hash`] — so two structurally
//!   identical graphs hash equal regardless of insertion order, and the
//!   64-bit key is stable across processes and can be persisted;
//! * the **capacity vector** (in canonical channel order; empty for
//!   analyses of graphs whose capacities are modelled in-graph); and
//! * the **analysis options** (every [`AnalysisOptions`] field), so a
//!   result computed under one configuration is never served to another —
//!   invalidation-by-options falls out of the key derivation.
//!
//! Interior mutability is a fixed set of `Mutex`-protected shards (an
//! FxHash map each), picked by key hash, so concurrent DSE workers rarely
//! contend on the same lock. Hit/miss/insert counters are atomics,
//! surfaced per run via [`GlobalAnalysisCache::stats`] (`mamps dse
//! --stats`).
//!
//! Entries [`export`](GlobalAnalysisCache::export) to /
//! [`import`](GlobalAnalysisCache::import) from serializable
//! [`CacheEntry`] values; `mamps_core::dse::cache` persists them as JSON
//! lines (`--cache-dir`), which is what makes a second sweep over the
//! same corpus warm across processes and shards.
//!
//! Hash collisions: two *different* graphs colliding on the 64-bit
//! fingerprint would alias cache entries. The keys mix every actor,
//! channel, rate and token count through a tagged, length-prefixed walk;
//! at DSE scales (thousands of distinct graphs) the collision probability
//! is ~n²/2⁶⁵ — accepted, as SDF3-style flows accept it for memoized
//! analyses.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{stable_hash, Deserialize, Serialize, Value};

use crate::error::SdfError;
use crate::graph::{ActorId, ChannelId, SdfGraph};
use crate::state_space::{throughput, AnalysisOptions, ThroughputResult};

/// FxHash (the rustc hash) as a `std::hash::Hasher`, for the in-memory
/// shard maps. Quality is sufficient for table indexing and it is much
/// cheaper than SipHash on the short keys used here. (Only the *stable*
/// [`serde::stable_hash`] is persisted; this table hash never leaves the
/// process.)
#[derive(Default)]
pub(crate) struct FxHasher(u64);

impl FxHasher {
    fn add(&mut self, word: u64) {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

pub(crate) type FxBuild = BuildHasherDefault<FxHasher>;
pub(crate) type FxHashMap<K, V> = HashMap<K, V, FxBuild>;

/// The canonical identity of a graph for caching purposes: a stable
/// 64-bit hash over the canonical-JSON form, plus the channel permutation
/// needed to translate caller-side capacity vectors (indexed by original
/// channel id) into canonical channel order.
///
/// Canonicalization sorts actors and channels by name (ties broken by
/// content), rewrites channel endpoints as ranks in the canonical actor
/// order, and drops the graph's own name (it does not influence any
/// analysis result). Two graphs built with the same actors and channels
/// in any insertion order therefore produce the same fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphFingerprint {
    hash: u64,
    /// Original channel index at each canonical position.
    channel_order: Vec<usize>,
}

impl GraphFingerprint {
    /// Computes the fingerprint of `graph`. Cost is one O(V log V +
    /// E log E) sort plus a linear hash walk — far below one state-space
    /// analysis of the same graph.
    pub fn of(graph: &SdfGraph) -> GraphFingerprint {
        let mut actor_order: Vec<usize> = (0..graph.actor_count()).collect();
        actor_order.sort_by(|&a, &b| {
            let (a, b) = (graph.actor(ActorId(a)), graph.actor(ActorId(b)));
            (a.name(), a.execution_time()).cmp(&(b.name(), b.execution_time()))
        });
        let mut actor_rank = vec![0usize; graph.actor_count()];
        for (rank, &orig) in actor_order.iter().enumerate() {
            actor_rank[orig] = rank;
        }

        let channel_key = |i: usize| {
            let c = graph.channel(ChannelId(i));
            (
                c.name().to_string(),
                actor_rank[c.src().0],
                actor_rank[c.dst().0],
                c.production_rate(),
                c.consumption_rate(),
                c.initial_tokens(),
                c.token_size(),
            )
        };
        let mut channel_order: Vec<usize> = (0..graph.channel_count()).collect();
        channel_order.sort_by_key(|&i| channel_key(i));

        let int = |v: u64| Value::Int(i128::from(v));
        let actors = Value::Seq(
            actor_order
                .iter()
                .map(|&i| {
                    let a = graph.actor(ActorId(i));
                    Value::Seq(vec![
                        Value::Str(a.name().to_string()),
                        int(a.execution_time()),
                    ])
                })
                .collect(),
        );
        let channels = Value::Seq(
            channel_order
                .iter()
                .map(|&i| {
                    let (name, src, dst, p, c, tokens, size) = channel_key(i);
                    Value::Seq(vec![
                        Value::Str(name),
                        Value::Int(src as i128),
                        Value::Int(dst as i128),
                        int(p),
                        int(c),
                        int(tokens),
                        int(size),
                    ])
                })
                .collect(),
        );
        GraphFingerprint {
            hash: stable_hash(&Value::Seq(vec![actors, channels])),
            channel_order,
        }
    }

    /// The stable 64-bit canonical-JSON hash.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Reorders a capacity vector (indexed by original channel id) into
    /// canonical channel order, so equal distributions key equal entries
    /// regardless of channel insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `caps` is neither empty nor of the graph's channel count.
    pub fn canonical_caps(&self, caps: &[u64]) -> Vec<u64> {
        if caps.is_empty() {
            return Vec::new();
        }
        assert_eq!(
            caps.len(),
            self.channel_order.len(),
            "capacity vector length must match the fingerprinted graph"
        );
        self.channel_order.iter().map(|&i| caps[i]).collect()
    }
}

/// Full cache key: graph fingerprint hash, canonical capacity vector, and
/// every analysis-options field.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    graph: u64,
    caps: Vec<u64>,
    auto_concurrency: bool,
    max_states: u64,
    max_firings_per_instant: u64,
}

impl Key {
    fn new(fp: &GraphFingerprint, caps: &[u64], opts: &AnalysisOptions) -> Key {
        Key {
            graph: fp.hash,
            caps: fp.canonical_caps(caps),
            auto_concurrency: opts.auto_concurrency,
            max_states: opts.max_states as u64,
            max_firings_per_instant: opts.max_firings_per_instant as u64,
        }
    }
}

/// One serializable cache entry, the unit of the on-disk JSONL layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// [`GraphFingerprint::hash`] of the analysed graph.
    pub graph: u64,
    /// Capacity vector in canonical channel order (empty when capacities
    /// are modelled in-graph).
    pub caps: Vec<u64>,
    /// [`AnalysisOptions::auto_concurrency`] of the analysis.
    pub auto_concurrency: bool,
    /// [`AnalysisOptions::max_states`] of the analysis.
    pub max_states: u64,
    /// [`AnalysisOptions::max_firings_per_instant`] of the analysis.
    pub max_firings_per_instant: u64,
    /// The memoized outcome (errors are cached too: a saturating
    /// distribution stays saturating).
    pub result: Result<ThroughputResult, SdfError>,
}

/// Counter snapshot of a [`GlobalAnalysisCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Entries newly inserted by [`GlobalAnalysisCache::insert`]
    /// (imported entries are not counted).
    pub inserts: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses / {} inserts ({} entries)",
            self.hits, self.misses, self.inserts, self.entries
        )
    }
}

/// Number of independently locked map shards. A small power of two:
/// enough that a handful of DSE workers rarely collide, cheap enough to
/// iterate for export.
const SHARD_COUNT: usize = 16;

/// A global, thread-safe throughput-analysis cache.
///
/// Shared as an `Arc` through `MapOptions`/`FlowOptions`, consulted by
/// every analysis of the flow (the mapping flow's expanded-graph
/// analyses, the genetic binder's fitness analyses, the multi-application
/// shared-system verification, and the buffer-sizing searches via
/// [`crate::buffer::AnalysisCache::with_global`]) before falling back to
/// the state-space kernel.
///
/// All methods take `&self`; shards are locked individually and never
/// while computing, so concurrent workers only serialize on map access
/// itself. Two workers racing to analyse the same key both compute and
/// both insert — the analysis is deterministic, so the duplicate insert
/// is benign (first write wins, counters may differ across runs).
pub struct GlobalAnalysisCache {
    shards: [Mutex<FxHashMap<Key, Result<ThroughputResult, SdfError>>>; SHARD_COUNT],
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl fmt::Debug for GlobalAnalysisCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlobalAnalysisCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for GlobalAnalysisCache {
    fn default() -> Self {
        GlobalAnalysisCache::new()
    }
}

impl GlobalAnalysisCache {
    /// An empty cache.
    pub fn new() -> GlobalAnalysisCache {
        GlobalAnalysisCache {
            shards: std::array::from_fn(|_| Mutex::new(FxHashMap::default())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &Key) -> &Mutex<FxHashMap<Key, Result<ThroughputResult, SdfError>>> {
        let h = FxBuild::default().hash_one(key);
        &self.shards[(h as usize) % SHARD_COUNT]
    }

    /// The memoized result for `(fingerprint, caps, opts)`, if any.
    /// Counts a hit or a miss.
    pub fn lookup(
        &self,
        fp: &GraphFingerprint,
        caps: &[u64],
        opts: &AnalysisOptions,
    ) -> Option<Result<ThroughputResult, SdfError>> {
        let key = Key::new(fp, caps, opts);
        let r = self
            .shard(&key)
            .lock()
            .expect("cache shard poisoned")
            .get(&key)
            .cloned();
        match r {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        r
    }

    /// Memoizes `result` under `(fingerprint, caps, opts)`. An existing
    /// entry is kept (analyses are deterministic, so it is equal anyway)
    /// and the insert counter is only bumped for genuinely new entries.
    pub fn insert(
        &self,
        fp: &GraphFingerprint,
        caps: &[u64],
        opts: &AnalysisOptions,
        result: Result<ThroughputResult, SdfError>,
    ) {
        let key = Key::new(fp, caps, opts);
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        if let Entry::Vacant(slot) = shard.entry(key) {
            slot.insert(result);
            self.inserts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// [`throughput`] of `graph` through the cache: fingerprints the
    /// graph, returns the memoized result on a hit, computes and memoizes
    /// on a miss. This is the entry point for analyses whose buffer
    /// capacities are modelled in-graph (expanded mapping graphs).
    ///
    /// # Errors
    ///
    /// The (possibly memoized) errors of [`throughput`].
    pub fn throughput(
        &self,
        graph: &SdfGraph,
        opts: &AnalysisOptions,
    ) -> Result<ThroughputResult, SdfError> {
        let fp = GraphFingerprint::of(graph);
        if let Some(r) = self.lookup(&fp, &[], opts) {
            return r;
        }
        let r = throughput(graph, opts);
        self.insert(&fp, &[], opts, r.clone());
        r
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every entry as a serializable [`CacheEntry`], deterministically
    /// sorted (by graph hash, capacities, options) so equal caches export
    /// byte-identical JSONL regardless of insertion or shard order.
    pub fn export(&self) -> Vec<CacheEntry> {
        let mut entries: Vec<CacheEntry> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            for (k, v) in shard.lock().expect("cache shard poisoned").iter() {
                entries.push(CacheEntry {
                    graph: k.graph,
                    caps: k.caps.clone(),
                    auto_concurrency: k.auto_concurrency,
                    max_states: k.max_states,
                    max_firings_per_instant: k.max_firings_per_instant,
                    result: v.clone(),
                });
            }
        }
        entries.sort_by(|a, b| {
            (
                a.graph,
                &a.caps,
                a.auto_concurrency,
                a.max_states,
                a.max_firings_per_instant,
            )
                .cmp(&(
                    b.graph,
                    &b.caps,
                    b.auto_concurrency,
                    b.max_states,
                    b.max_firings_per_instant,
                ))
        });
        entries
    }

    /// Loads entries (e.g. parsed from an on-disk cache file) into the
    /// cache, returning how many were new. Existing entries win over
    /// imported ones; duplicates across files are harmless. Imports touch
    /// neither the hit/miss nor the insert counters — they account for
    /// *this* run's analyses only.
    pub fn import<I: IntoIterator<Item = CacheEntry>>(&self, entries: I) -> usize {
        let mut added = 0;
        for e in entries {
            let key = Key {
                graph: e.graph,
                caps: e.caps,
                auto_concurrency: e.auto_concurrency,
                max_states: e.max_states,
                max_firings_per_instant: e.max_firings_per_instant,
            };
            let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
            if let Entry::Vacant(slot) = shard.entry(key) {
                slot.insert(e.result);
                added += 1;
            }
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SdfGraphBuilder;

    fn two_actor_graph(order: &[&str]) -> SdfGraph {
        // Same structure regardless of `order`: actors A (10) and B (5)
        // with a channel A -> B; only insertion order differs.
        let mut b = SdfGraphBuilder::new("g");
        let mut ids = HashMap::new();
        for &name in order {
            let t = if name == "A" { 10 } else { 5 };
            ids.insert(name, b.add_actor(name, t));
        }
        b.add_channel("e", ids["A"], 2, ids["B"], 1);
        b.build().unwrap()
    }

    #[test]
    fn insertion_order_does_not_change_the_fingerprint() {
        // The satellite contract: two structurally identical graphs with
        // different actor insertion order hash equal under canonical JSON.
        let ab = two_actor_graph(&["A", "B"]);
        let ba = two_actor_graph(&["B", "A"]);
        assert_ne!(ab, ba, "insertion order differs, so the graphs do");
        assert_eq!(
            GraphFingerprint::of(&ab).hash(),
            GraphFingerprint::of(&ba).hash()
        );
    }

    #[test]
    fn channel_insertion_order_does_not_change_the_fingerprint() {
        let build = |flip: bool| {
            let mut b = SdfGraphBuilder::new("g");
            let x = b.add_actor("x", 1);
            let y = b.add_actor("y", 2);
            let add_e = |b: &mut SdfGraphBuilder| b.add_channel("e", x, 1, y, 1);
            let add_f = |b: &mut SdfGraphBuilder| b.add_channel("f", y, 3, x, 2);
            if flip {
                add_f(&mut b);
                add_e(&mut b);
            } else {
                add_e(&mut b);
                add_f(&mut b);
            }
            b.build().unwrap()
        };
        let (g, h) = (build(false), build(true));
        let (fg, fh) = (GraphFingerprint::of(&g), GraphFingerprint::of(&h));
        assert_eq!(fg.hash(), fh.hash());
        // The permutations map each graph's own channel ids onto the same
        // canonical order: capacities follow the channel, not its index.
        let caps_g = [7u64, 9]; // e=7, f=9
        let caps_h = [9u64, 7]; // f=9, e=7
        assert_eq!(fg.canonical_caps(&caps_g), fh.canonical_caps(&caps_h));
    }

    #[test]
    fn structural_differences_change_the_fingerprint() {
        let base = two_actor_graph(&["A", "B"]);
        let fp = GraphFingerprint::of(&base).hash();
        let mut b = SdfGraphBuilder::new("g");
        let a = b.add_actor("A", 10);
        let bb = b.add_actor("B", 5);
        b.add_channel_with_tokens("e", a, 2, bb, 1, 1); // one initial token
        assert_ne!(GraphFingerprint::of(&b.build().unwrap()).hash(), fp);
        let mut b = SdfGraphBuilder::new("g");
        let a = b.add_actor("A", 11); // different WCET
        let bb = b.add_actor("B", 5);
        b.add_channel("e", a, 2, bb, 1);
        assert_ne!(GraphFingerprint::of(&b.build().unwrap()).hash(), fp);
    }

    #[test]
    fn graph_name_is_not_part_of_the_identity() {
        let mut b = SdfGraphBuilder::new("one");
        let x = b.add_actor("x", 3);
        b.add_channel_with_tokens("s", x, 1, x, 1, 1);
        let one = b.build().unwrap();
        let mut b = SdfGraphBuilder::new("two");
        let x = b.add_actor("x", 3);
        b.add_channel_with_tokens("s", x, 1, x, 1, 1);
        let two = b.build().unwrap();
        assert_eq!(
            GraphFingerprint::of(&one).hash(),
            GraphFingerprint::of(&two).hash()
        );
    }

    #[test]
    fn cached_throughput_matches_uncached_and_counts() {
        let g = two_actor_graph(&["A", "B"]);
        let opts = AnalysisOptions::default();
        let cache = GlobalAnalysisCache::new();
        let direct = throughput(&g, &opts).unwrap();
        let cold = cache.throughput(&g, &opts).unwrap();
        let warm = cache.throughput(&g, &opts).unwrap();
        assert_eq!(cold, direct);
        assert_eq!(warm, direct);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (1, 1, 1, 1));
    }

    #[test]
    fn options_are_part_of_the_key() {
        let g = two_actor_graph(&["A", "B"]);
        let cache = GlobalAnalysisCache::new();
        let a = AnalysisOptions::default();
        let b = AnalysisOptions {
            max_states: 123_456,
            ..AnalysisOptions::default()
        };
        let ra = cache.throughput(&g, &a).unwrap();
        // Different options must not see `ra`'s entry.
        let rb = cache.throughput(&g, &b).unwrap();
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(ra, throughput(&g, &a).unwrap());
        assert_eq!(rb, throughput(&g, &b).unwrap());
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn export_import_round_trips_and_is_deterministic() {
        let g = two_actor_graph(&["A", "B"]);
        let cache = GlobalAnalysisCache::new();
        for max_states in [1000usize, 2000, 3000] {
            let opts = AnalysisOptions {
                max_states,
                ..AnalysisOptions::default()
            };
            cache.throughput(&g, &opts).unwrap();
        }
        let exported = cache.export();
        assert_eq!(exported.len(), 3);
        assert!(exported
            .windows(2)
            .all(|w| w[0].max_states < w[1].max_states));

        let fresh = GlobalAnalysisCache::new();
        assert_eq!(fresh.import(exported.clone()), 3);
        assert_eq!(fresh.import(exported.clone()), 0, "duplicates are no-ops");
        assert_eq!(fresh.export(), exported);
        // Imports do not pollute the per-run counters.
        let s = fresh.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (0, 0, 0));
        // And the imported entries actually serve lookups.
        let opts = AnalysisOptions {
            max_states: 2000,
            ..AnalysisOptions::default()
        };
        assert_eq!(
            fresh.throughput(&g, &opts).unwrap(),
            throughput(&g, &opts).unwrap()
        );
        assert_eq!(fresh.stats().hits, 1);
    }

    #[test]
    fn cache_entries_serialize_to_json_and_back() {
        let g = two_actor_graph(&["A", "B"]);
        let cache = GlobalAnalysisCache::new();
        cache.throughput(&g, &AnalysisOptions::default()).unwrap();
        for e in cache.export() {
            let line = serde::json::to_string(&e);
            let back: CacheEntry = serde::json::from_str(&line).unwrap();
            assert_eq!(back, e);
            assert_eq!(serde::json::to_string(&back), line, "canonical bytes");
        }
    }

    #[test]
    fn errors_are_memoized_too() {
        // A graph that deadlocks (no initial tokens on a cycle).
        let mut b = SdfGraphBuilder::new("dead");
        let x = b.add_actor("x", 1);
        let y = b.add_actor("y", 1);
        b.add_channel("e", x, 1, y, 1);
        b.add_channel("f", y, 1, x, 1);
        let g = b.build().unwrap();
        let opts = AnalysisOptions::default();
        let cache = GlobalAnalysisCache::new();
        let e1 = cache.throughput(&g, &opts).unwrap_err();
        let e2 = cache.throughput(&g, &opts).unwrap_err();
        assert_eq!(e1, e2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn concurrent_lookups_agree() {
        let g = two_actor_graph(&["A", "B"]);
        let opts = AnalysisOptions::default();
        let cache = GlobalAnalysisCache::new();
        let expected = throughput(&g, &opts).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        assert_eq!(cache.throughput(&g, &opts).unwrap(), expected);
                    }
                });
            }
        });
        assert_eq!(cache.stats().entries, 1);
    }
}
