//! Error type shared by all SDF analyses.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Errors produced by graph construction and analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SdfError {
    /// The graph violates a structural invariant (duplicate names, zero
    /// rates, dangling endpoints, ...). The message names the offender.
    InvalidGraph(String),
    /// The graph is not sample-rate consistent: no non-trivial repetition
    /// vector exists. The message names the first unbalanced channel.
    Inconsistent(String),
    /// The graph is not connected, so a single repetition vector does not
    /// cover all actors.
    Disconnected,
    /// The graph deadlocks before completing one iteration.
    Deadlock(String),
    /// The analysis hit a safety limit (e.g. a zero-delay cycle fires
    /// unboundedly at a single time instant).
    AnalysisLimit(String),
    /// An arithmetic overflow occurred while scaling analysis quantities.
    Overflow(String),
}

impl fmt::Display for SdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfError::InvalidGraph(m) => write!(f, "invalid SDF graph: {m}"),
            SdfError::Inconsistent(m) => write!(f, "inconsistent SDF graph: {m}"),
            SdfError::Disconnected => write!(f, "SDF graph is not connected"),
            SdfError::Deadlock(m) => write!(f, "SDF graph deadlocks: {m}"),
            SdfError::AnalysisLimit(m) => write!(f, "analysis limit reached: {m}"),
            SdfError::Overflow(m) => write!(f, "arithmetic overflow: {m}"),
        }
    }
}

impl Error for SdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let variants = [
            SdfError::InvalidGraph("x".into()),
            SdfError::Inconsistent("y".into()),
            SdfError::Disconnected,
            SdfError::Deadlock("z".into()),
            SdfError::AnalysisLimit("w".into()),
            SdfError::Overflow("v".into()),
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("SDF"));
        }
    }
}
