//! Repetition-vector computation and sample-rate consistency.
//!
//! The repetition vector `q` of a consistent SDF graph is the smallest
//! positive integer vector such that for every channel `(src, dst)` with
//! production rate `p` and consumption rate `c`: `q[src] * p == q[dst] * c`.
//! One *iteration* of the graph fires each actor `q[a]` times and returns
//! every channel to its initial token count.

use crate::error::SdfError;
use crate::graph::{ActorId, SdfGraph};
use crate::ratio::{lcm, Ratio};

/// The repetition vector of a consistent, connected SDF graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepetitionVector {
    entries: Vec<u64>,
}

impl RepetitionVector {
    /// Number of firings of `actor` in one graph iteration.
    pub fn of(&self, actor: ActorId) -> u64 {
        self.entries[actor.0]
    }

    /// All entries indexed by actor id.
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }

    /// Total number of firings in one iteration (useful as a work measure).
    pub fn total_firings(&self) -> u64 {
        self.entries.iter().sum()
    }
}

/// Computes the repetition vector of `graph`.
///
/// # Errors
///
/// * [`SdfError::Disconnected`] if the graph is not connected (no common
///   normalization exists).
/// * [`SdfError::Inconsistent`] if some channel cannot be balanced.
/// * [`SdfError::Overflow`] if scaling the fractional solution to integers
///   overflows `u64` (pathological rate combinations).
///
/// # Examples
///
/// ```
/// use mamps_sdf::graph::SdfGraphBuilder;
/// use mamps_sdf::repetition::repetition_vector;
///
/// let mut b = SdfGraphBuilder::new("g");
/// let a = b.add_actor("A", 1);
/// let c = b.add_actor("B", 1);
/// b.add_channel("e", a, 2, c, 3);
/// let g = b.build().unwrap();
/// let q = repetition_vector(&g).unwrap();
/// assert_eq!(q.of(a), 3);
/// assert_eq!(q.of(c), 2);
/// ```
pub fn repetition_vector(graph: &SdfGraph) -> Result<RepetitionVector, SdfError> {
    if graph.actor_count() == 0 {
        return Ok(RepetitionVector {
            entries: Vec::new(),
        });
    }
    if !graph.is_connected() {
        return Err(SdfError::Disconnected);
    }

    // Propagate fractional firing rates from actor 0 through the graph.
    let n = graph.actor_count();
    let mut frac: Vec<Option<Ratio>> = vec![None; n];
    frac[0] = Some(Ratio::ONE);
    let mut stack = vec![ActorId(0)];
    while let Some(v) = stack.pop() {
        let fv = frac[v.0].expect("visited actors have a rate");
        for &cid in graph.outgoing(v) {
            let ch = graph.channel(cid);
            let fw = fv * Ratio::new(ch.production_rate() as i128, ch.consumption_rate() as i128);
            match frac[ch.dst().0] {
                None => {
                    frac[ch.dst().0] = Some(fw);
                    stack.push(ch.dst());
                }
                Some(existing) => {
                    if existing != fw {
                        return Err(SdfError::Inconsistent(format!(
                            "channel `{}` cannot be balanced ({} vs {})",
                            ch.name(),
                            existing,
                            fw
                        )));
                    }
                }
            }
        }
        for &cid in graph.incoming(v) {
            let ch = graph.channel(cid);
            let fw = fv * Ratio::new(ch.consumption_rate() as i128, ch.production_rate() as i128);
            match frac[ch.src().0] {
                None => {
                    frac[ch.src().0] = Some(fw);
                    stack.push(ch.src());
                }
                Some(existing) => {
                    if existing != fw {
                        return Err(SdfError::Inconsistent(format!(
                            "channel `{}` cannot be balanced ({} vs {})",
                            ch.name(),
                            existing,
                            fw
                        )));
                    }
                }
            }
        }
    }

    // Scale fractions to the smallest integer vector: multiply by the LCM of
    // denominators, then divide by the GCD of numerators.
    let mut denom_lcm: u64 = 1;
    for f in frac.iter().flatten() {
        let d = f.denom() as u64;
        denom_lcm = lcm(denom_lcm, d);
        if denom_lcm == 0 {
            return Err(SdfError::Overflow("repetition vector scaling".into()));
        }
    }
    let mut entries: Vec<u64> = Vec::with_capacity(n);
    for f in &frac {
        let f = f.expect("connected graph covers all actors");
        let scaled = f * Ratio::from_int(denom_lcm as i128);
        debug_assert!(scaled.is_integer());
        let v = scaled.numer();
        if v <= 0 || v > u64::MAX as i128 {
            return Err(SdfError::Overflow("repetition vector entry".into()));
        }
        entries.push(v as u64);
    }
    let g = entries.iter().copied().fold(0u64, crate::ratio::gcd).max(1);
    for e in &mut entries {
        *e /= g;
    }
    Ok(RepetitionVector { entries })
}

/// Checks sample-rate consistency (a thin wrapper around
/// [`repetition_vector`] that discards the vector).
///
/// # Errors
///
/// Same as [`repetition_vector`].
pub fn check_consistency(graph: &SdfGraph) -> Result<(), SdfError> {
    repetition_vector(graph).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SdfGraphBuilder;

    fn fig2() -> SdfGraph {
        let mut b = SdfGraphBuilder::new("fig2");
        let a = b.add_actor("A", 10);
        let bb = b.add_actor("B", 5);
        let c = b.add_actor("C", 7);
        b.add_channel("a2b", a, 2, bb, 1);
        b.add_channel("a2c", a, 1, c, 1);
        b.add_channel("b2c", bb, 1, c, 2);
        b.add_channel_with_tokens("selfA", a, 1, a, 1, 1);
        b.build().unwrap()
    }

    #[test]
    fn fig2_repetition_vector() {
        // A fires once, producing 2 tokens for B (rate 1 -> B fires twice)
        // and 1 token for C; B's two firings give C's 2-rate input one
        // consumption, so C fires once.
        let g = fig2();
        let q = repetition_vector(&g).unwrap();
        assert_eq!(q.of(g.actor_by_name("A").unwrap()), 1);
        assert_eq!(q.of(g.actor_by_name("B").unwrap()), 2);
        assert_eq!(q.of(g.actor_by_name("C").unwrap()), 1);
        assert_eq!(q.total_firings(), 4);
    }

    #[test]
    fn inconsistent_graph_detected() {
        let mut b = SdfGraphBuilder::new("bad");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        // Two parallel channels with incompatible rate ratios.
        b.add_channel("e1", a, 1, c, 1);
        b.add_channel("e2", a, 2, c, 1);
        let g = b.build().unwrap();
        assert!(matches!(
            repetition_vector(&g),
            Err(SdfError::Inconsistent(_))
        ));
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut b = SdfGraphBuilder::new("disc");
        b.add_actor("A", 1);
        b.add_actor("B", 1);
        let g = b.build().unwrap();
        assert_eq!(repetition_vector(&g), Err(SdfError::Disconnected));
    }

    #[test]
    fn empty_graph_ok() {
        let g = SdfGraphBuilder::new("empty").build().unwrap();
        let q = repetition_vector(&g).unwrap();
        assert_eq!(q.entries().len(), 0);
        assert_eq!(q.total_firings(), 0);
    }

    #[test]
    fn single_actor_with_self_edge() {
        let mut b = SdfGraphBuilder::new("one");
        let a = b.add_actor("A", 3);
        b.add_channel_with_tokens("s", a, 1, a, 1, 1);
        let g = b.build().unwrap();
        let q = repetition_vector(&g).unwrap();
        assert_eq!(q.of(a), 1);
    }

    #[test]
    fn rates_requiring_scaling() {
        // A --6--> B --10--> C with consumption 4 and 15:
        // q_A * 6 = q_B * 4, q_B * 10 = q_C * 15 => q = (2, 3, 2).
        let mut b = SdfGraphBuilder::new("scale");
        let a = b.add_actor("A", 1);
        let bb = b.add_actor("B", 1);
        let c = b.add_actor("C", 1);
        b.add_channel("e1", a, 6, bb, 4);
        b.add_channel("e2", bb, 10, c, 15);
        let g = b.build().unwrap();
        let q = repetition_vector(&g).unwrap();
        assert_eq!(
            (q.of(a), q.of(bb), q.of(c)),
            (2, 3, 2),
            "smallest integer solution expected"
        );
    }

    #[test]
    fn vector_is_minimal() {
        // All rates equal: repetition vector must be all ones, not all twos.
        let mut b = SdfGraphBuilder::new("min");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel("e1", a, 4, c, 4);
        let g = b.build().unwrap();
        let q = repetition_vector(&g).unwrap();
        assert_eq!(q.entries(), &[1, 1]);
    }

    #[test]
    fn consistency_wrapper() {
        assert!(check_consistency(&fig2()).is_ok());
    }
}
