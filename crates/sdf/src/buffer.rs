//! Buffer-capacity analysis: minimal deadlock-free distributions and
//! throughput-constrained buffer sizing.
//!
//! SDF3 computes buffer distributions alongside the mapping (paper §5.1:
//! "SDF3 also verifies if such a mapping is deadlock free, calculates buffer
//! distributions, and predicts which throughput can be guaranteed"). The
//! algorithms here follow the same structure: capacities are modelled as
//! reverse channels ([`crate::transform::with_buffer_capacities`]), a
//! minimal live distribution is found by demand-driven growth from the
//! per-channel lower bound, and throughput targets are met by greedy growth
//! of the most profitable buffer.

use crate::error::SdfError;
use crate::graph::{ActorId, ChannelId, SdfGraph};
use crate::ratio::{gcd, Ratio};
use crate::repetition::repetition_vector;
use crate::state_space::{throughput, AnalysisOptions, ThroughputResult};
use crate::transform::with_buffer_capacities;

/// Per-channel lower bound for a deadlock-free capacity of a single channel
/// in isolation: `p + c - gcd(p, c)`, raised to the initial token count if
/// that is larger. (Self-edges keep their own token count.)
pub fn capacity_lower_bound(graph: &SdfGraph, id: ChannelId) -> u64 {
    let ch = graph.channel(id);
    let p = ch.production_rate();
    let c = ch.consumption_rate();
    let lb = p + c - gcd(p, c);
    lb.max(ch.initial_tokens())
}

/// Computes a minimal-ish deadlock-free buffer distribution.
///
/// Starting from every channel's isolated lower bound, the abstract
/// execution is run; when it stalls, the capacities blocking a pending actor
/// are grown by one rate step and the search repeats. The result is live but
/// not guaranteed globally minimal (finding the minimum is NP-hard); it
/// matches the demand-driven heuristic used in practice.
///
/// # Errors
///
/// * Consistency errors from [`repetition_vector`].
/// * [`SdfError::Deadlock`] if the *unbounded* graph already deadlocks
///   (no capacity assignment can help).
/// * [`SdfError::AnalysisLimit`] if growth does not converge.
pub fn minimal_live_capacities(graph: &SdfGraph) -> Result<Vec<u64>, SdfError> {
    // If the unbounded graph deadlocks, buffering is not the problem.
    crate::liveness::check_liveness(graph)?;

    let mut caps: Vec<u64> = graph
        .channels()
        .map(|(id, _)| capacity_lower_bound(graph, id))
        .collect();
    // Growth limit: generous multiple of the total iteration token traffic.
    let q = repetition_vector(graph)?;
    let limit: u64 = graph
        .channels()
        .map(|(_, c)| q.of(c.src()) * c.production_rate() + c.initial_tokens())
        .max()
        .unwrap_or(1)
        * 4
        + 16;

    for _ in 0..10_000 {
        match blocked_channels(graph, &caps)? {
            None => return Ok(caps),
            Some(blocked) => {
                let mut grew = false;
                for cid in blocked {
                    let ch = graph.channel(cid);
                    let step = gcd(ch.production_rate(), ch.consumption_rate());
                    if caps[cid.0] + step <= limit {
                        caps[cid.0] += step;
                        grew = true;
                    }
                }
                if !grew {
                    return Err(SdfError::AnalysisLimit(
                        "buffer growth hit the safety limit without reaching liveness".into(),
                    ));
                }
            }
        }
    }
    Err(SdfError::AnalysisLimit(
        "buffer growth did not converge".into(),
    ))
}

/// Grows a live distribution until the bounded graph sustains `target`
/// iterations/cycle, greedily picking the channel whose growth helps most.
///
/// Returns the capacities and the throughput actually achieved.
///
/// # Errors
///
/// * Errors from [`minimal_live_capacities`] and the throughput analysis.
/// * [`SdfError::AnalysisLimit`] if the target is unreachable: growth stops
///   once no channel improves throughput (the graph's unbounded limit is
///   below the target) or the step budget is exhausted.
pub fn size_for_throughput(
    graph: &SdfGraph,
    target: Ratio,
    opts: &AnalysisOptions,
) -> Result<(Vec<u64>, ThroughputResult), SdfError> {
    let mut caps = minimal_live_capacities(graph)?;
    let mut current = analyse(graph, &caps, opts)?;
    let mut budget = 64 * graph.channel_count().max(1);

    while current.iterations_per_cycle < target {
        if budget == 0 {
            return Err(SdfError::AnalysisLimit(format!(
                "buffer sizing budget exhausted at throughput {}",
                current.iterations_per_cycle
            )));
        }
        budget -= 1;

        // Greedy: try one growth step on each channel, keep the best.
        let mut best: Option<(usize, ThroughputResult)> = None;
        for (cid, ch) in graph.channels() {
            if ch.is_self_edge() {
                continue;
            }
            let step = gcd(ch.production_rate(), ch.consumption_rate());
            caps[cid.0] += step;
            let t = analyse(graph, &caps, opts)?;
            caps[cid.0] -= step;
            let better = match &best {
                None => t.iterations_per_cycle > current.iterations_per_cycle,
                Some((_, bt)) => t.iterations_per_cycle > bt.iterations_per_cycle,
            };
            if better {
                best = Some((cid.0, t));
            }
        }
        match best {
            Some((idx, t)) => {
                let ch = graph.channel(ChannelId(idx));
                caps[idx] += gcd(ch.production_rate(), ch.consumption_rate());
                current = t;
            }
            None => {
                return Err(SdfError::AnalysisLimit(format!(
                    "throughput target {target} unreachable; saturated at {}",
                    current.iterations_per_cycle
                )));
            }
        }
    }
    Ok((caps, current))
}

/// Analyses the graph bounded by `caps`.
pub fn analyse(
    graph: &SdfGraph,
    caps: &[u64],
    opts: &AnalysisOptions,
) -> Result<ThroughputResult, SdfError> {
    let bounded = with_buffer_capacities(graph, caps)?;
    throughput(&bounded, opts)
}

/// Runs the abstract iteration on the bounded graph; on stall, returns the
/// forward channels whose capacity blocks a pending actor (`Ok(None)` when
/// the iteration completes).
fn blocked_channels(graph: &SdfGraph, caps: &[u64]) -> Result<Option<Vec<ChannelId>>, SdfError> {
    let q = repetition_vector(graph)?;
    let n = graph.actor_count();
    let mut fill: Vec<u64> = graph.channels().map(|(_, c)| c.initial_tokens()).collect();
    let mut remaining: Vec<u64> = (0..n).map(|i| q.of(ActorId(i))).collect();

    // An actor can fire if inputs are available *and* every non-self output
    // channel has spare capacity.
    let can_fire = |fill: &[u64], remaining: &[u64], a: usize| -> bool {
        if remaining[a] == 0 {
            return false;
        }
        let inputs_ok = graph
            .incoming(ActorId(a))
            .iter()
            .all(|&cid| fill[cid.0] >= graph.channel(cid).consumption_rate());
        let outputs_ok = graph.outgoing(ActorId(a)).iter().all(|&cid| {
            let ch = graph.channel(cid);
            if ch.is_self_edge() {
                return true;
            }
            fill[cid.0] + ch.production_rate() <= caps[cid.0]
        });
        inputs_ok && outputs_ok
    };

    loop {
        let mut fired = false;
        for a in 0..n {
            if can_fire(&fill, &remaining, a) {
                for &cid in graph.incoming(ActorId(a)) {
                    fill[cid.0] -= graph.channel(cid).consumption_rate();
                }
                for &cid in graph.outgoing(ActorId(a)) {
                    fill[cid.0] += graph.channel(cid).production_rate();
                }
                remaining[a] -= 1;
                fired = true;
            }
        }
        if remaining.iter().all(|&r| r == 0) {
            return Ok(None);
        }
        if !fired {
            // Collect output channels that are full for pending actors.
            let mut blocked = Vec::new();
            for (a, _) in remaining.iter().enumerate().filter(|&(_, &r)| r > 0) {
                for &cid in graph.outgoing(ActorId(a)) {
                    let ch = graph.channel(cid);
                    if !ch.is_self_edge() && fill[cid.0] + ch.production_rate() > caps[cid.0] {
                        blocked.push(cid);
                    }
                }
            }
            if blocked.is_empty() {
                // Stall is caused by inputs, not capacities: genuine deadlock
                // (should have been caught by the unbounded liveness check).
                return Err(SdfError::Deadlock(
                    "stall not attributable to buffer capacities".into(),
                ));
            }
            blocked.sort();
            blocked.dedup();
            return Ok(Some(blocked));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SdfGraphBuilder;

    fn chain(p: u64, c: u64) -> SdfGraph {
        let mut b = SdfGraphBuilder::new("chain");
        let a = b.add_actor("A", 2);
        let d = b.add_actor("B", 3);
        b.add_channel("e", a, p, d, c);
        b.build().unwrap()
    }

    #[test]
    fn lower_bound_formula() {
        let g = chain(2, 3);
        assert_eq!(capacity_lower_bound(&g, ChannelId(0)), 4); // 2+3-1
        let g = chain(4, 4);
        assert_eq!(capacity_lower_bound(&g, ChannelId(0)), 4); // 4+4-4
    }

    #[test]
    fn lower_bound_respects_initial_tokens() {
        let mut b = SdfGraphBuilder::new("g");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel_with_tokens("e", a, 1, c, 1, 7);
        let g = b.build().unwrap();
        assert_eq!(capacity_lower_bound(&g, ChannelId(0)), 7);
    }

    #[test]
    fn minimal_capacities_are_live() {
        let g = chain(2, 3);
        let caps = minimal_live_capacities(&g).unwrap();
        let bounded = with_buffer_capacities(&g, &caps).unwrap();
        assert!(crate::liveness::check_liveness(&bounded).is_ok());
    }

    #[test]
    fn unit_rate_chain_needs_capacity_one() {
        let g = chain(1, 1);
        let caps = minimal_live_capacities(&g).unwrap();
        assert_eq!(caps, vec![1]);
    }

    #[test]
    fn deadlocked_graph_rejected() {
        let mut b = SdfGraphBuilder::new("dead");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel("f", a, 1, c, 1);
        b.add_channel("r", c, 1, a, 1);
        let g = b.build().unwrap();
        assert!(matches!(
            minimal_live_capacities(&g),
            Err(SdfError::Deadlock(_))
        ));
    }

    #[test]
    fn sizing_reaches_saturation_throughput() {
        // Unbounded bottleneck: B at 1/3. A buffer of 2 already decouples.
        let g = chain(1, 1);
        let (caps, t) =
            size_for_throughput(&g, Ratio::new(1, 3), &AnalysisOptions::default()).unwrap();
        assert_eq!(t.iterations_per_cycle, Ratio::new(1, 3));
        assert!(caps[0] >= 1);
    }

    #[test]
    fn unreachable_target_reported() {
        let g = chain(1, 1);
        let r = size_for_throughput(&g, Ratio::new(1, 2), &AnalysisOptions::default());
        assert!(matches!(r, Err(SdfError::AnalysisLimit(_))));
    }

    #[test]
    fn larger_target_needs_no_smaller_buffers() {
        let g = chain(2, 3);
        let (caps_low, _) =
            size_for_throughput(&g, Ratio::new(1, 100), &AnalysisOptions::default()).unwrap();
        let (caps_high, _) =
            size_for_throughput(&g, Ratio::new(1, 9), &AnalysisOptions::default()).unwrap();
        let total_low: u64 = caps_low.iter().sum();
        let total_high: u64 = caps_high.iter().sum();
        assert!(total_high >= total_low);
    }

    #[test]
    fn multirate_cycle_with_state_edge() {
        let mut b = SdfGraphBuilder::new("mrc");
        let a = b.add_actor("A", 4);
        let c = b.add_actor("B", 1);
        b.add_channel("e", a, 3, c, 2);
        b.add_channel_with_tokens("sa", a, 1, a, 1, 1);
        let g = b.build().unwrap();
        let caps = minimal_live_capacities(&g).unwrap();
        let bounded = with_buffer_capacities(&g, &caps).unwrap();
        assert!(throughput(&bounded, &AnalysisOptions::default()).is_ok());
    }
}

/// A point of the storage/throughput trade-off.
#[derive(Debug, Clone, PartialEq)]
pub struct StoragePoint {
    /// Buffer capacities per channel.
    pub capacities: Vec<u64>,
    /// Total storage in tokens.
    pub total_tokens: u64,
    /// Throughput achieved with these capacities.
    pub throughput: Ratio,
}

/// Explores the storage/throughput Pareto space (SDF3's storage-throughput
/// trade-off, paper §5.1: "calculates buffer distributions"): starting from
/// the minimal live distribution, repeatedly grows the most profitable
/// buffer and records every point where the throughput strictly improves,
/// until the unbounded throughput is reached or growth saturates.
///
/// The returned points are Pareto-optimal within the explored (greedy)
/// chain: strictly increasing in both storage and throughput.
///
/// # Errors
///
/// Propagates liveness/analysis errors.
pub fn storage_throughput_pareto(
    graph: &SdfGraph,
    opts: &AnalysisOptions,
    max_steps: usize,
) -> Result<Vec<StoragePoint>, SdfError> {
    let unbounded = throughput(graph, opts)?.iterations_per_cycle;
    let mut caps = minimal_live_capacities(graph)?;
    let mut current = analyse(graph, &caps, opts)?;
    let mut points = vec![StoragePoint {
        capacities: caps.clone(),
        total_tokens: caps.iter().sum(),
        throughput: current.iterations_per_cycle,
    }];

    for _ in 0..max_steps {
        if current.iterations_per_cycle >= unbounded {
            break;
        }
        // Greedy: the single growth step with the best gain.
        let mut best: Option<(usize, ThroughputResult)> = None;
        for (cid, ch) in graph.channels() {
            if ch.is_self_edge() {
                continue;
            }
            let step = gcd(ch.production_rate(), ch.consumption_rate());
            caps[cid.0] += step;
            if let Ok(t) = analyse(graph, &caps, opts) {
                let better = match &best {
                    None => t.iterations_per_cycle > current.iterations_per_cycle,
                    Some((_, bt)) => t.iterations_per_cycle > bt.iterations_per_cycle,
                };
                if better {
                    best = Some((cid.0, t));
                }
            }
            caps[cid.0] -= step;
        }
        match best {
            Some((idx, t)) => {
                let ch = graph.channel(ChannelId(idx));
                caps[idx] += gcd(ch.production_rate(), ch.consumption_rate());
                current = t;
                points.push(StoragePoint {
                    capacities: caps.clone(),
                    total_tokens: caps.iter().sum(),
                    throughput: current.iterations_per_cycle,
                });
            }
            None => break, // saturated below the unbounded limit
        }
    }
    Ok(points)
}

#[cfg(test)]
mod pareto_tests {
    use super::*;
    use crate::graph::SdfGraphBuilder;

    fn chain() -> SdfGraph {
        let mut b = SdfGraphBuilder::new("p");
        let a = b.add_actor("A", 2);
        let d = b.add_actor("B", 3);
        b.add_channel("e", a, 2, d, 3);
        b.build().unwrap()
    }

    #[test]
    fn pareto_points_strictly_improve() {
        let points = storage_throughput_pareto(&chain(), &AnalysisOptions::default(), 32).unwrap();
        assert!(points.len() >= 2, "expected a non-trivial trade-off");
        for w in points.windows(2) {
            assert!(w[1].total_tokens > w[0].total_tokens);
            assert!(w[1].throughput > w[0].throughput);
        }
    }

    #[test]
    fn pareto_reaches_the_unbounded_limit() {
        let g = chain();
        let unbounded = throughput(&g, &AnalysisOptions::default()).unwrap();
        let points = storage_throughput_pareto(&g, &AnalysisOptions::default(), 64).unwrap();
        assert_eq!(
            points.last().unwrap().throughput,
            unbounded.iterations_per_cycle,
            "the chain should saturate at the unbounded throughput"
        );
    }

    #[test]
    fn first_point_is_minimal_live() {
        let g = chain();
        let min = minimal_live_capacities(&g).unwrap();
        let points = storage_throughput_pareto(&g, &AnalysisOptions::default(), 8).unwrap();
        assert_eq!(points[0].capacities, min);
    }
}
