//! Buffer-capacity analysis: minimal deadlock-free distributions and
//! throughput-constrained buffer sizing.
//!
//! SDF3 computes buffer distributions alongside the mapping (paper §5.1:
//! "SDF3 also verifies if such a mapping is deadlock free, calculates buffer
//! distributions, and predicts which throughput can be guaranteed"). The
//! algorithms here follow the same structure: capacities are modelled as
//! reverse channels ([`crate::transform::with_buffer_capacities`]), a
//! minimal live distribution is found by demand-driven growth from the
//! per-channel lower bound, and throughput targets are met by greedy growth
//! of the most profitable buffer.
//!
//! Greedy growth re-analyses the graph once per candidate channel per step,
//! which makes the throughput kernel the hot path of the whole sizing
//! search. Two optimizations keep that affordable:
//!
//! * every analysis goes through [`AnalysisCache`], which memoizes
//!   [`ThroughputResult`]s by capacity vector (so [`size_for_throughput`]
//!   and [`storage_throughput_pareto`] never analyse the same distribution
//!   twice, even across calls when a cache is shared) and reuses the
//!   kernel's scratch allocations between analyses;
//! * independent growth candidates of one greedy step can be analysed
//!   concurrently with the `jobs` knob of the `_with` variants — the best
//!   candidate is still selected in channel order, so results are identical
//!   to the sequential search.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::cache::{GlobalAnalysisCache, GraphFingerprint};
use crate::error::SdfError;
use crate::graph::{ActorId, ChannelId, SdfGraph};
use crate::ratio::{gcd, Ratio};
use crate::repetition::{repetition_vector, RepetitionVector};
use crate::state_space::{
    throughput, throughput_bounded, throughput_bounded_with, AnalysisOptions, ThroughputResult,
};

/// Per-channel lower bound for a deadlock-free capacity of a single channel
/// in isolation: `p + c - gcd(p, c)`, raised to the initial token count if
/// that is larger. (Self-edges keep their own token count.)
pub fn capacity_lower_bound(graph: &SdfGraph, id: ChannelId) -> u64 {
    let ch = graph.channel(id);
    let p = ch.production_rate();
    let c = ch.consumption_rate();
    let lb = p + c - gcd(p, c);
    lb.max(ch.initial_tokens())
}

/// Memoizes bounded throughput analyses of **one** graph by capacity
/// vector, and carries the kernel scratch buffers so repeated analyses are
/// allocation-free.
///
/// Greedy buffer growth walks a chain of capacity distributions and probes
/// one growth step per channel at every link; sharing a cache across
/// [`size_for_throughput_with`] and [`storage_throughput_pareto_with`]
/// calls on the same graph means no distribution is ever analysed twice.
/// Errors are memoized too (a saturating candidate stays saturating).
///
/// The cache does not track graph identity: create one cache per graph.
/// Analysis options *are* tracked — a call with different options than the
/// memoized entries invalidates the table, so stale results are never
/// returned.
///
/// A per-graph cache can additionally be **backed by a
/// [`GlobalAnalysisCache`]** ([`AnalysisCache::with_global`]): local
/// misses then consult the global table (keyed by the graph's canonical
/// fingerprint, so entries survive across runs, graphs, and — through the
/// disk layer — processes) before running the kernel, and every computed
/// result is published back to it.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    map: HashMap<Vec<u64>, Result<ThroughputResult, SdfError>>,
    /// Fingerprint of the options the memoized entries were computed with.
    opts_fingerprint: Option<(bool, usize, usize)>,
    scratch: crate::state_space::Scratch,
    hits: u64,
    misses: u64,
    /// Cross-run backing store plus this graph's fingerprint under it.
    global: Option<(Arc<GlobalAnalysisCache>, GraphFingerprint)>,
}

impl AnalysisCache {
    /// Creates an empty cache.
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// Creates a cache for `graph` backed by the global cache: local
    /// misses are looked up in (and computed results published to)
    /// `global` under `graph`'s canonical fingerprint. The graph passed
    /// to later [`analyse`](Self::analyse) calls must be the one
    /// fingerprinted here — same contract as the plain per-graph cache.
    pub fn with_global(graph: &SdfGraph, global: Arc<GlobalAnalysisCache>) -> AnalysisCache {
        AnalysisCache {
            global: Some((global, GraphFingerprint::of(graph))),
            ..AnalysisCache::default()
        }
    }

    /// Analyses `graph` bounded by `caps`, returning the memoized result
    /// when this distribution was seen before (with the same options).
    ///
    /// # Errors
    ///
    /// The (possibly memoized) errors of [`throughput_bounded`].
    pub fn analyse(
        &mut self,
        graph: &SdfGraph,
        caps: &[u64],
        opts: &AnalysisOptions,
    ) -> Result<ThroughputResult, SdfError> {
        self.check_options(opts);
        if let Some(r) = self.map.get(caps) {
            self.hits += 1;
            return r.clone();
        }
        if let Some(r) = self.global_lookup(caps, opts) {
            self.hits += 1;
            self.map.insert(caps.to_vec(), r.clone());
            return r;
        }
        let r = throughput_bounded_with(graph, caps, opts, &mut self.scratch);
        self.misses += 1;
        self.map.insert(caps.to_vec(), r.clone());
        self.global_publish(caps, opts, r.clone());
        r
    }

    /// A hit from the global backing store, if configured and present.
    fn global_lookup(
        &self,
        caps: &[u64],
        opts: &AnalysisOptions,
    ) -> Option<Result<ThroughputResult, SdfError>> {
        let (global, fp) = self.global.as_ref()?;
        global.lookup(fp, caps, opts)
    }

    /// Publishes a computed result to the global backing store, if any.
    fn global_publish(
        &self,
        caps: &[u64],
        opts: &AnalysisOptions,
        r: Result<ThroughputResult, SdfError>,
    ) {
        if let Some((global, fp)) = &self.global {
            global.insert(fp, caps, opts, r);
        }
    }

    /// Drops memoized entries computed under different analysis options, so
    /// one cache can never serve a result from a mismatched configuration.
    fn check_options(&mut self, opts: &AnalysisOptions) {
        let fp = (
            opts.auto_concurrency,
            opts.max_states,
            opts.max_firings_per_instant,
        );
        if self.opts_fingerprint != Some(fp) {
            if self.opts_fingerprint.is_some() {
                self.map.clear();
            }
            self.opts_fingerprint = Some(fp);
        }
    }

    /// Memoized result for `caps`, if present locally or in the global
    /// backing store (no analysis is run). Counts as a hit so the
    /// statistics agree between the sequential and the parallel
    /// candidate-evaluation paths.
    fn peek(
        &mut self,
        caps: &[u64],
        opts: &AnalysisOptions,
    ) -> Option<Result<ThroughputResult, SdfError>> {
        let r = self
            .map
            .get(caps)
            .cloned()
            .or_else(|| self.global_lookup(caps, opts));
        if let Some(r) = &r {
            self.hits += 1;
            self.map.entry(caps.to_vec()).or_insert_with(|| r.clone());
        }
        r
    }

    fn insert(
        &mut self,
        caps: Vec<u64>,
        opts: &AnalysisOptions,
        r: Result<ThroughputResult, SdfError>,
    ) {
        self.global_publish(&caps, opts, r.clone());
        self.map.insert(caps, r);
        self.misses += 1;
    }

    /// Number of analyses answered from the memo table.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of analyses actually run.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of memoized distributions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Computes a minimal-ish deadlock-free buffer distribution.
///
/// Starting from every channel's isolated lower bound, the abstract
/// execution is run; when it stalls, the capacities blocking a pending actor
/// are grown by one rate step and the search repeats. The result is live but
/// not guaranteed globally minimal (finding the minimum is NP-hard); it
/// matches the demand-driven heuristic used in practice.
///
/// # Errors
///
/// * Consistency errors from [`repetition_vector`].
/// * [`SdfError::Deadlock`] if the *unbounded* graph already deadlocks
///   (no capacity assignment can help).
/// * [`SdfError::AnalysisLimit`] if growth does not converge.
pub fn minimal_live_capacities(graph: &SdfGraph) -> Result<Vec<u64>, SdfError> {
    // If the unbounded graph deadlocks, buffering is not the problem.
    crate::liveness::check_liveness(graph)?;

    let mut caps: Vec<u64> = graph
        .channels()
        .map(|(id, _)| capacity_lower_bound(graph, id))
        .collect();
    // Growth limit: generous multiple of the total iteration token traffic.
    let q = repetition_vector(graph)?;
    let limit: u64 = graph
        .channels()
        .map(|(_, c)| q.of(c.src()) * c.production_rate() + c.initial_tokens())
        .max()
        .unwrap_or(1)
        * 4
        + 16;

    for _ in 0..10_000 {
        match blocked_channels(graph, &q, &caps)? {
            None => return Ok(caps),
            Some(blocked) => {
                let mut grew = false;
                for cid in blocked {
                    let ch = graph.channel(cid);
                    let step = gcd(ch.production_rate(), ch.consumption_rate());
                    if caps[cid.0] + step <= limit {
                        caps[cid.0] += step;
                        grew = true;
                    }
                }
                if !grew {
                    return Err(SdfError::AnalysisLimit(
                        "buffer growth hit the safety limit without reaching liveness".into(),
                    ));
                }
            }
        }
    }
    Err(SdfError::AnalysisLimit(
        "buffer growth did not converge".into(),
    ))
}

/// Grows a live distribution until the bounded graph sustains `target`
/// iterations/cycle, greedily picking the channel whose growth helps most.
///
/// Returns the capacities and the throughput actually achieved.
///
/// Equivalent to [`size_for_throughput_with`] with a fresh cache and
/// sequential candidate evaluation.
///
/// # Errors
///
/// * Errors from [`minimal_live_capacities`] and the throughput analysis.
/// * [`SdfError::AnalysisLimit`] if the target is unreachable: growth stops
///   once no channel improves throughput (the graph's unbounded limit is
///   below the target) or the step budget is exhausted.
pub fn size_for_throughput(
    graph: &SdfGraph,
    target: Ratio,
    opts: &AnalysisOptions,
) -> Result<(Vec<u64>, ThroughputResult), SdfError> {
    size_for_throughput_with(graph, target, opts, &mut AnalysisCache::new(), 1)
}

/// [`size_for_throughput`] with a shared [`AnalysisCache`] and `jobs`
/// worker threads for the candidate evaluations of each greedy step.
/// Results are identical for any `jobs` value.
///
/// # Errors
///
/// See [`size_for_throughput`].
pub fn size_for_throughput_with(
    graph: &SdfGraph,
    target: Ratio,
    opts: &AnalysisOptions,
    cache: &mut AnalysisCache,
    jobs: usize,
) -> Result<(Vec<u64>, ThroughputResult), SdfError> {
    let mut caps = minimal_live_capacities(graph)?;
    let mut current = cache.analyse(graph, &caps, opts)?;
    let mut budget = 64 * graph.channel_count().max(1);
    let candidates = growth_candidates(graph);

    while current.iterations_per_cycle < target {
        if budget == 0 {
            return Err(SdfError::AnalysisLimit(format!(
                "buffer sizing budget exhausted at throughput {}",
                current.iterations_per_cycle
            )));
        }
        budget -= 1;

        // Greedy: try one growth step on each channel, keep the best.
        let results = analyse_candidates(graph, &mut caps, &candidates, opts, cache, jobs);
        let mut best: Option<(usize, ThroughputResult)> = None;
        for (&(idx, _), r) in candidates.iter().zip(results) {
            let t = r?;
            let better = match &best {
                None => t.iterations_per_cycle > current.iterations_per_cycle,
                Some((_, bt)) => t.iterations_per_cycle > bt.iterations_per_cycle,
            };
            if better {
                best = Some((idx, t));
            }
        }
        match best {
            Some((idx, t)) => {
                let ch = graph.channel(ChannelId(idx));
                caps[idx] += gcd(ch.production_rate(), ch.consumption_rate());
                current = t;
            }
            None => {
                return Err(SdfError::AnalysisLimit(format!(
                    "throughput target {target} unreachable; saturated at {}",
                    current.iterations_per_cycle
                )));
            }
        }
    }
    Ok((caps, current))
}

/// Analyses the graph bounded by `caps`.
///
/// Uses the materialization-free bounded kernel
/// ([`throughput_bounded`]); the result is identical to
/// `throughput(&with_buffer_capacities(graph, caps)?, opts)`.
///
/// # Errors
///
/// See [`throughput_bounded`].
pub fn analyse(
    graph: &SdfGraph,
    caps: &[u64],
    opts: &AnalysisOptions,
) -> Result<ThroughputResult, SdfError> {
    throughput_bounded(graph, caps, opts)
}

/// The growth candidates of the greedy searches: `(channel index, step)`
/// for every non-self channel, in channel order.
fn growth_candidates(graph: &SdfGraph) -> Vec<(usize, u64)> {
    graph
        .channels()
        .filter(|(_, ch)| !ch.is_self_edge())
        .map(|(cid, ch)| (cid.0, gcd(ch.production_rate(), ch.consumption_rate())))
        .collect()
}

/// Analyses every candidate distribution `caps + step·e_idx` of one greedy
/// step, returning results in candidate order. Cache hits are answered
/// directly; misses are computed — concurrently when `jobs > 1`, each
/// worker with its own scratch space — and memoized.
///
/// Small graphs fall back to the sequential path regardless of `jobs`:
/// their analyses finish in microseconds, below the cost of spawning the
/// scoped workers.
fn analyse_candidates(
    graph: &SdfGraph,
    caps: &mut [u64],
    candidates: &[(usize, u64)],
    opts: &AnalysisOptions,
    cache: &mut AnalysisCache,
    jobs: usize,
) -> Vec<Result<ThroughputResult, SdfError>> {
    cache.check_options(opts);
    let tiny = graph.actor_count() + graph.channel_count() < 32;
    if jobs <= 1 || candidates.len() <= 1 || tiny {
        return candidates
            .iter()
            .map(|&(idx, step)| {
                caps[idx] += step;
                let r = cache.analyse(graph, caps, opts);
                caps[idx] -= step;
                r
            })
            .collect();
    }

    let mut results: Vec<Option<Result<ThroughputResult, SdfError>>> =
        Vec::with_capacity(candidates.len());
    let mut missing: Vec<(usize, Vec<u64>)> = Vec::new();
    for (ci, &(idx, step)) in candidates.iter().enumerate() {
        caps[idx] += step;
        match cache.peek(caps, opts) {
            Some(r) => results.push(Some(r)),
            None => {
                results.push(None);
                missing.push((ci, caps.to_vec()));
            }
        }
        caps[idx] -= step;
    }

    let computed = analyse_distributions_parallel(graph, &missing, opts, jobs);
    for ((ci, dist), r) in missing.into_iter().zip(computed) {
        cache.insert(dist, opts, r.clone());
        results[ci] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every candidate analysed"))
        .collect()
}

/// Analyses independent capacity distributions on `jobs` scoped threads.
/// Work is handed out through an atomic cursor; each worker owns its
/// scratch space, so no locking happens on the hot path. The worker count
/// is capped at the available parallelism (the work is CPU-bound).
fn analyse_distributions_parallel(
    graph: &SdfGraph,
    work: &[(usize, Vec<u64>)],
    opts: &AnalysisOptions,
    jobs: usize,
) -> Vec<Result<ThroughputResult, SdfError>> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let jobs = jobs.min(cores).min(work.len()).max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<ThroughputResult, SdfError>>>> =
        work.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut scratch = crate::state_space::Scratch::default();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= work.len() {
                        break;
                    }
                    let r = throughput_bounded_with(graph, &work[i].1, opts, &mut scratch);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every work item claimed")
        })
        .collect()
}

/// Runs the abstract iteration on the bounded graph; on stall, returns the
/// forward channels whose capacity blocks a pending actor (`Ok(None)` when
/// the iteration completes).
fn blocked_channels(
    graph: &SdfGraph,
    q: &RepetitionVector,
    caps: &[u64],
) -> Result<Option<Vec<ChannelId>>, SdfError> {
    let n = graph.actor_count();
    let mut fill: Vec<u64> = graph.channels().map(|(_, c)| c.initial_tokens()).collect();
    let mut remaining: Vec<u64> = (0..n).map(|i| q.of(ActorId(i))).collect();

    // An actor can fire if inputs are available *and* every non-self output
    // channel has spare capacity.
    let can_fire = |fill: &[u64], remaining: &[u64], a: usize| -> bool {
        if remaining[a] == 0 {
            return false;
        }
        let inputs_ok = graph
            .incoming(ActorId(a))
            .iter()
            .all(|&cid| fill[cid.0] >= graph.channel(cid).consumption_rate());
        let outputs_ok = graph.outgoing(ActorId(a)).iter().all(|&cid| {
            let ch = graph.channel(cid);
            if ch.is_self_edge() {
                return true;
            }
            fill[cid.0] + ch.production_rate() <= caps[cid.0]
        });
        inputs_ok && outputs_ok
    };

    loop {
        let mut fired = false;
        for a in 0..n {
            if can_fire(&fill, &remaining, a) {
                for &cid in graph.incoming(ActorId(a)) {
                    fill[cid.0] -= graph.channel(cid).consumption_rate();
                }
                for &cid in graph.outgoing(ActorId(a)) {
                    fill[cid.0] += graph.channel(cid).production_rate();
                }
                remaining[a] -= 1;
                fired = true;
            }
        }
        if remaining.iter().all(|&r| r == 0) {
            return Ok(None);
        }
        if !fired {
            // Collect output channels that are full for pending actors.
            let mut blocked = Vec::new();
            for (a, _) in remaining.iter().enumerate().filter(|&(_, &r)| r > 0) {
                for &cid in graph.outgoing(ActorId(a)) {
                    let ch = graph.channel(cid);
                    if !ch.is_self_edge() && fill[cid.0] + ch.production_rate() > caps[cid.0] {
                        blocked.push(cid);
                    }
                }
            }
            if blocked.is_empty() {
                // Stall is caused by inputs, not capacities: genuine deadlock
                // (should have been caught by the unbounded liveness check).
                return Err(SdfError::Deadlock(
                    "stall not attributable to buffer capacities".into(),
                ));
            }
            blocked.sort();
            blocked.dedup();
            return Ok(Some(blocked));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SdfGraphBuilder;
    use crate::transform::with_buffer_capacities;

    fn chain(p: u64, c: u64) -> SdfGraph {
        let mut b = SdfGraphBuilder::new("chain");
        let a = b.add_actor("A", 2);
        let d = b.add_actor("B", 3);
        b.add_channel("e", a, p, d, c);
        b.build().unwrap()
    }

    #[test]
    fn lower_bound_formula() {
        let g = chain(2, 3);
        assert_eq!(capacity_lower_bound(&g, ChannelId(0)), 4); // 2+3-1
        let g = chain(4, 4);
        assert_eq!(capacity_lower_bound(&g, ChannelId(0)), 4); // 4+4-4
    }

    #[test]
    fn lower_bound_respects_initial_tokens() {
        let mut b = SdfGraphBuilder::new("g");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel_with_tokens("e", a, 1, c, 1, 7);
        let g = b.build().unwrap();
        assert_eq!(capacity_lower_bound(&g, ChannelId(0)), 7);
    }

    #[test]
    fn minimal_capacities_are_live() {
        let g = chain(2, 3);
        let caps = minimal_live_capacities(&g).unwrap();
        let bounded = with_buffer_capacities(&g, &caps).unwrap();
        assert!(crate::liveness::check_liveness(&bounded).is_ok());
    }

    #[test]
    fn unit_rate_chain_needs_capacity_one() {
        let g = chain(1, 1);
        let caps = minimal_live_capacities(&g).unwrap();
        assert_eq!(caps, vec![1]);
    }

    #[test]
    fn deadlocked_graph_rejected() {
        let mut b = SdfGraphBuilder::new("dead");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel("f", a, 1, c, 1);
        b.add_channel("r", c, 1, a, 1);
        let g = b.build().unwrap();
        assert!(matches!(
            minimal_live_capacities(&g),
            Err(SdfError::Deadlock(_))
        ));
    }

    #[test]
    fn sizing_reaches_saturation_throughput() {
        // Unbounded bottleneck: B at 1/3. A buffer of 2 already decouples.
        let g = chain(1, 1);
        let (caps, t) =
            size_for_throughput(&g, Ratio::new(1, 3), &AnalysisOptions::default()).unwrap();
        assert_eq!(t.iterations_per_cycle, Ratio::new(1, 3));
        assert!(caps[0] >= 1);
    }

    #[test]
    fn unreachable_target_reported() {
        let g = chain(1, 1);
        let r = size_for_throughput(&g, Ratio::new(1, 2), &AnalysisOptions::default());
        assert!(matches!(r, Err(SdfError::AnalysisLimit(_))));
    }

    #[test]
    fn larger_target_needs_no_smaller_buffers() {
        let g = chain(2, 3);
        let (caps_low, _) =
            size_for_throughput(&g, Ratio::new(1, 100), &AnalysisOptions::default()).unwrap();
        let (caps_high, _) =
            size_for_throughput(&g, Ratio::new(1, 9), &AnalysisOptions::default()).unwrap();
        let total_low: u64 = caps_low.iter().sum();
        let total_high: u64 = caps_high.iter().sum();
        assert!(total_high >= total_low);
    }

    #[test]
    fn multirate_cycle_with_state_edge() {
        let mut b = SdfGraphBuilder::new("mrc");
        let a = b.add_actor("A", 4);
        let c = b.add_actor("B", 1);
        b.add_channel("e", a, 3, c, 2);
        b.add_channel_with_tokens("sa", a, 1, a, 1, 1);
        let g = b.build().unwrap();
        let caps = minimal_live_capacities(&g).unwrap();
        let bounded = with_buffer_capacities(&g, &caps).unwrap();
        assert!(throughput(&bounded, &AnalysisOptions::default()).is_ok());
    }

    #[test]
    fn cache_memoizes_repeated_distributions() {
        let g = chain(2, 3);
        let mut cache = AnalysisCache::new();
        let opts = AnalysisOptions::default();
        let a1 = cache.analyse(&g, &[5], &opts).unwrap();
        let a2 = cache.analyse(&g, &[5], &opts).unwrap();
        assert_eq!(a1, a2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shared_cache_spans_sizing_and_pareto() {
        let g = chain(2, 3);
        let opts = AnalysisOptions::default();
        let mut cache = AnalysisCache::new();
        // 1/6 is the saturation throughput of the chain, so sizing and the
        // pareto walk stop at the same link of the greedy chain.
        let (caps, t) =
            size_for_throughput_with(&g, Ratio::new(1, 6), &opts, &mut cache, 1).unwrap();
        let analyses_after_sizing = cache.misses();
        // The pareto walk revisits the same greedy chain: mostly cache hits.
        let points = storage_throughput_pareto_with(&g, &opts, 32, &mut cache, 1).unwrap();
        assert!(cache.hits() > 0, "pareto should reuse sizing analyses");
        assert!(cache.misses() >= analyses_after_sizing);
        // Both searches agree on the saturation point.
        assert_eq!(points.last().unwrap().throughput, t.iterations_per_cycle);
        assert_eq!(points.last().unwrap().capacities, caps);
    }

    #[test]
    fn cache_invalidates_on_option_change() {
        let g = chain(2, 3);
        let mut cache = AnalysisCache::new();
        let a = cache
            .analyse(&g, &[6], &AnalysisOptions::default())
            .unwrap();
        // Same capacities, different options: must re-analyse, not serve
        // the memoized default-options result.
        let auto = AnalysisOptions {
            auto_concurrency: true,
            ..AnalysisOptions::default()
        };
        let b = cache.analyse(&g, &[6], &auto).unwrap();
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
        assert_eq!(a, analyse(&g, &[6], &AnalysisOptions::default()).unwrap());
        assert_eq!(b, analyse(&g, &[6], &auto).unwrap());
    }

    #[test]
    fn parallel_sizing_matches_sequential_on_large_ring() {
        // Big enough (20 actors + 20 channels) to take the threaded
        // candidate-evaluation path rather than the tiny-graph fallback.
        let n = 20usize;
        let mut b = SdfGraphBuilder::new("bigring");
        let ids: Vec<_> = (0..n)
            .map(|i| b.add_actor(format!("a{i}"), 1 + (i as u64 % 4)))
            .collect();
        for i in 0..n {
            b.add_channel_with_tokens(format!("e{i}"), ids[i], 1, ids[(i + 1) % n], 1, 2);
        }
        let g = b.build().unwrap();
        let opts = AnalysisOptions::default();
        let target = Ratio::new(1, 200);
        let seq = size_for_throughput(&g, target, &opts);
        let par = size_for_throughput_with(&g, target, &opts, &mut AnalysisCache::new(), 4);
        match (seq, par) {
            (Ok(s), Ok(p)) => assert_eq!(s, p),
            (Err(_), Err(_)) => {}
            (s, p) => panic!("sequential/parallel sizing disagree: {s:?} vs {p:?}"),
        }
    }

    #[test]
    fn parallel_sizing_matches_sequential() {
        let g = {
            let mut b = SdfGraphBuilder::new("net");
            let a = b.add_actor("A", 2);
            let c = b.add_actor("B", 3);
            let d = b.add_actor("C", 5);
            b.add_channel("e0", a, 2, c, 3);
            b.add_channel("e1", c, 1, d, 2);
            b.add_channel("e2", a, 1, d, 3);
            b.build().unwrap()
        };
        let opts = AnalysisOptions::default();
        let target = Ratio::new(1, 40);
        let seq = size_for_throughput(&g, target, &opts).unwrap();
        let par =
            size_for_throughput_with(&g, target, &opts, &mut AnalysisCache::new(), 4).unwrap();
        assert_eq!(seq, par);
    }
}

/// A point of the storage/throughput trade-off.
#[derive(Debug, Clone, PartialEq)]
pub struct StoragePoint {
    /// Buffer capacities per channel.
    pub capacities: Vec<u64>,
    /// Total storage in tokens.
    pub total_tokens: u64,
    /// Throughput achieved with these capacities.
    pub throughput: Ratio,
}

/// Explores the storage/throughput Pareto space (SDF3's storage-throughput
/// trade-off, paper §5.1: "calculates buffer distributions"): starting from
/// the minimal live distribution, repeatedly grows the most profitable
/// buffer and records every point where the throughput strictly improves,
/// until the unbounded throughput is reached or growth saturates.
///
/// The returned points are Pareto-optimal within the explored (greedy)
/// chain: strictly increasing in both storage and throughput.
///
/// Equivalent to [`storage_throughput_pareto_with`] with a fresh cache and
/// sequential candidate evaluation.
///
/// # Errors
///
/// Propagates liveness/analysis errors.
pub fn storage_throughput_pareto(
    graph: &SdfGraph,
    opts: &AnalysisOptions,
    max_steps: usize,
) -> Result<Vec<StoragePoint>, SdfError> {
    storage_throughput_pareto_with(graph, opts, max_steps, &mut AnalysisCache::new(), 1)
}

/// [`storage_throughput_pareto`] with a shared [`AnalysisCache`] and `jobs`
/// worker threads for the candidate evaluations of each greedy step.
/// Results are identical for any `jobs` value.
///
/// # Errors
///
/// See [`storage_throughput_pareto`].
pub fn storage_throughput_pareto_with(
    graph: &SdfGraph,
    opts: &AnalysisOptions,
    max_steps: usize,
    cache: &mut AnalysisCache,
    jobs: usize,
) -> Result<Vec<StoragePoint>, SdfError> {
    let unbounded = throughput(graph, opts)?.iterations_per_cycle;
    let mut caps = minimal_live_capacities(graph)?;
    let mut current = cache.analyse(graph, &caps, opts)?;
    let mut points = vec![StoragePoint {
        capacities: caps.clone(),
        total_tokens: caps.iter().sum(),
        throughput: current.iterations_per_cycle,
    }];
    let candidates = growth_candidates(graph);

    for _ in 0..max_steps {
        if current.iterations_per_cycle >= unbounded {
            break;
        }
        // Greedy: the single growth step with the best gain. Analysis
        // errors disqualify a candidate, matching the sequential search.
        let results = analyse_candidates(graph, &mut caps, &candidates, opts, cache, jobs);
        let mut best: Option<(usize, ThroughputResult)> = None;
        for (&(idx, _), r) in candidates.iter().zip(results) {
            if let Ok(t) = r {
                let better = match &best {
                    None => t.iterations_per_cycle > current.iterations_per_cycle,
                    Some((_, bt)) => t.iterations_per_cycle > bt.iterations_per_cycle,
                };
                if better {
                    best = Some((idx, t));
                }
            }
        }
        match best {
            Some((idx, t)) => {
                let ch = graph.channel(ChannelId(idx));
                caps[idx] += gcd(ch.production_rate(), ch.consumption_rate());
                current = t;
                points.push(StoragePoint {
                    capacities: caps.clone(),
                    total_tokens: caps.iter().sum(),
                    throughput: current.iterations_per_cycle,
                });
            }
            None => break, // saturated below the unbounded limit
        }
    }
    Ok(points)
}

#[cfg(test)]
mod pareto_tests {
    use super::*;
    use crate::graph::SdfGraphBuilder;

    fn chain() -> SdfGraph {
        let mut b = SdfGraphBuilder::new("p");
        let a = b.add_actor("A", 2);
        let d = b.add_actor("B", 3);
        b.add_channel("e", a, 2, d, 3);
        b.build().unwrap()
    }

    #[test]
    fn pareto_points_strictly_improve() {
        let points = storage_throughput_pareto(&chain(), &AnalysisOptions::default(), 32).unwrap();
        assert!(points.len() >= 2, "expected a non-trivial trade-off");
        for w in points.windows(2) {
            assert!(w[1].total_tokens > w[0].total_tokens);
            assert!(w[1].throughput > w[0].throughput);
        }
    }

    #[test]
    fn pareto_reaches_the_unbounded_limit() {
        let g = chain();
        let unbounded = throughput(&g, &AnalysisOptions::default()).unwrap();
        let points = storage_throughput_pareto(&g, &AnalysisOptions::default(), 64).unwrap();
        assert_eq!(
            points.last().unwrap().throughput,
            unbounded.iterations_per_cycle,
            "the chain should saturate at the unbounded throughput"
        );
    }

    #[test]
    fn first_point_is_minimal_live() {
        let g = chain();
        let min = minimal_live_capacities(&g).unwrap();
        let points = storage_throughput_pareto(&g, &AnalysisOptions::default(), 8).unwrap();
        assert_eq!(points[0].capacities, min);
    }

    #[test]
    fn parallel_pareto_matches_sequential() {
        let g = chain();
        let opts = AnalysisOptions::default();
        let seq = storage_throughput_pareto(&g, &opts, 32).unwrap();
        let par =
            storage_throughput_pareto_with(&g, &opts, 32, &mut AnalysisCache::new(), 4).unwrap();
        assert_eq!(seq, par);
    }
}
