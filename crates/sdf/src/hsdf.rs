//! SDF to HSDF (homogeneous SDF) conversion.
//!
//! Every actor `a` of a consistent SDF graph is expanded into `q[a]` copies,
//! one per firing within an iteration, and channels are rewired so that each
//! copy consumes exactly the tokens its firing would consume. The resulting
//! graph has all rates equal to one, enabling max-cycle-ratio analysis
//! ([`crate::mcr`]) as an independent check of the state-space throughput.

use crate::error::SdfError;
use crate::graph::{ActorId, SdfGraph, SdfGraphBuilder};
use crate::repetition::repetition_vector;
use std::collections::HashMap;

/// Result of an HSDF expansion, keeping the copy <-> original mapping.
#[derive(Debug, Clone)]
pub struct Hsdf {
    graph: SdfGraph,
    /// For each HSDF actor: (original actor, firing index).
    origin: Vec<(ActorId, u64)>,
}

impl Hsdf {
    /// The homogeneous graph (all rates are 1).
    pub fn graph(&self) -> &SdfGraph {
        &self.graph
    }

    /// Original actor and firing index of an HSDF copy.
    pub fn origin(&self, copy: ActorId) -> (ActorId, u64) {
        self.origin[copy.0]
    }
}

fn floor_div(a: i64, b: i64) -> i64 {
    let d = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        d - 1
    } else {
        d
    }
}

fn modulo(a: i64, b: i64) -> i64 {
    ((a % b) + b) % b
}

/// Converts a consistent, connected SDF graph into its HSDF equivalent.
///
/// # Errors
///
/// Propagates consistency errors from [`repetition_vector`], and returns
/// [`SdfError::Overflow`] if the expansion would create more than
/// `2^22` actor copies (the expansion is exponential in the worst case).
///
/// # Examples
///
/// ```
/// use mamps_sdf::graph::SdfGraphBuilder;
/// use mamps_sdf::hsdf::to_hsdf;
///
/// let mut b = SdfGraphBuilder::new("g");
/// let a = b.add_actor("A", 1);
/// let c = b.add_actor("B", 1);
/// b.add_channel("e", a, 2, c, 3);
/// let g = b.build().unwrap();
/// let h = to_hsdf(&g).unwrap();
/// // q = (3, 2): five copies in total.
/// assert_eq!(h.graph().actor_count(), 5);
/// ```
pub fn to_hsdf(graph: &SdfGraph) -> Result<Hsdf, SdfError> {
    let q = repetition_vector(graph)?;
    let total: u64 = q.entries().iter().sum();
    if total > (1 << 22) {
        return Err(SdfError::Overflow(format!(
            "HSDF expansion would create {total} actors"
        )));
    }

    let mut b = SdfGraphBuilder::new(format!("{}:hsdf", graph.name()));
    let mut copy_id: HashMap<(usize, u64), ActorId> = HashMap::new();
    let mut origin = Vec::with_capacity(total as usize);
    for (aid, actor) in graph.actors() {
        for k in 0..q.of(aid) {
            let id = b.add_actor(format!("{}#{k}", actor.name()), actor.execution_time());
            copy_id.insert((aid.0, k), id);
            origin.push((aid, k));
        }
    }

    // For each channel and each token consumed in one iteration, add an edge
    // from the producing copy to the consuming copy with a delay equal to the
    // number of iterations separating them. Parallel edges between the same
    // pair collapse to the minimum delay (the binding constraint).
    let mut edges: HashMap<(ActorId, ActorId), u64> = HashMap::new();
    for (_, ch) in graph.channels() {
        let p = ch.production_rate() as i64;
        let c = ch.consumption_rate() as i64;
        let d = ch.initial_tokens() as i64;
        let qu = q.of(ch.src()) as i64;
        let qv = q.of(ch.dst());
        for j in 0..qv {
            for l in 0..c {
                let k = (j as i64) * c + l; // token index consumed in iter 0
                let m = k - d; // global index of the producing token
                let i = floor_div(m, p); // global producer firing index
                let r = modulo(i, qu) as u64; // producer copy
                let it = floor_div(i, qu); // producer iteration (<= 0)
                let delay = (-it) as u64;
                let src = copy_id[&(ch.src().0, r)];
                let dst = copy_id[&(ch.dst().0, j)];
                edges
                    .entry((src, dst))
                    .and_modify(|e| *e = (*e).min(delay))
                    .or_insert(delay);
            }
        }
    }
    let mut sorted: Vec<((ActorId, ActorId), u64)> = edges.into_iter().collect();
    sorted.sort();
    for (idx, ((src, dst), delay)) in sorted.into_iter().enumerate() {
        b.add_channel_with_tokens(format!("h{idx}"), src, 1, dst, 1, delay);
    }
    let graph = b.build().expect("HSDF construction produces a valid graph");
    Ok(Hsdf { graph, origin })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SdfGraphBuilder;

    #[test]
    fn floor_div_and_modulo() {
        assert_eq!(floor_div(7, 2), 3);
        assert_eq!(floor_div(-1, 2), -1);
        assert_eq!(floor_div(-4, 2), -2);
        assert_eq!(modulo(-1, 3), 2);
        assert_eq!(modulo(5, 3), 2);
    }

    #[test]
    fn homogeneous_graph_is_identity_shape() {
        let mut b = SdfGraphBuilder::new("h");
        let a = b.add_actor("A", 2);
        let c = b.add_actor("B", 3);
        b.add_channel_with_tokens("e", a, 1, c, 1, 1);
        b.add_channel("r", c, 1, a, 1);
        let g = b.build().unwrap();
        let h = to_hsdf(&g).unwrap();
        assert_eq!(h.graph().actor_count(), 2);
        assert_eq!(h.graph().channel_count(), 2);
        let e = h.graph().channel_by_name("h0").unwrap();
        let _ = e; // delays preserved:
        let delays: Vec<u64> = h
            .graph()
            .channels()
            .map(|(_, c)| c.initial_tokens())
            .collect();
        let mut sorted = delays.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }

    #[test]
    fn multirate_expansion_counts() {
        let mut b = SdfGraphBuilder::new("g");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel("e", a, 2, c, 3);
        let g = b.build().unwrap();
        let h = to_hsdf(&g).unwrap();
        assert_eq!(h.graph().actor_count(), 5); // q = (3, 2)
        assert_eq!(h.origin(ActorId(0)), (a, 0));
        assert_eq!(h.origin(ActorId(3)), (c, 0));
    }

    #[test]
    fn initial_tokens_become_interiteration_delays() {
        // A -> B, rate 1/1, 1 initial token: B#0 reads the token produced by
        // A#0 of the *previous* iteration => delay 1 edge.
        let mut b = SdfGraphBuilder::new("d");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel_with_tokens("e", a, 1, c, 1, 1);
        let g = b.build().unwrap();
        let h = to_hsdf(&g).unwrap();
        assert_eq!(h.graph().channel_count(), 1);
        let (_, ch) = h.graph().channels().next().unwrap();
        assert_eq!(ch.initial_tokens(), 1);
        assert_eq!(ch.production_rate(), 1);
        assert_eq!(ch.consumption_rate(), 1);
    }

    #[test]
    fn consumer_spanning_producers() {
        // A --1--> B with consumption 2 and q=(2,1): B#0 depends on both A#0
        // and A#1 in the same iteration (delay 0).
        let mut b = SdfGraphBuilder::new("span");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel("e", a, 1, c, 2);
        let g = b.build().unwrap();
        let h = to_hsdf(&g).unwrap();
        assert_eq!(h.graph().actor_count(), 3);
        assert_eq!(h.graph().channel_count(), 2);
        for (_, ch) in h.graph().channels() {
            assert_eq!(ch.initial_tokens(), 0);
        }
    }

    #[test]
    fn self_edge_serializes_copies() {
        // Actor with q=2 and a 1-token self-edge: copies chained with the
        // token returning across the iteration boundary.
        let mut b = SdfGraphBuilder::new("se");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel("e", a, 1, c, 2); // q = (2, 1)
        b.add_channel_with_tokens("s", a, 1, a, 1, 1);
        let g = b.build().unwrap();
        let h = to_hsdf(&g).unwrap();
        // A#0 -> A#1 (delay 0) and A#1 -> A#0 (delay 1).
        let a0 = h.graph().actor_by_name("A#0").unwrap();
        let a1 = h.graph().actor_by_name("A#1").unwrap();
        let mut found_fwd = false;
        let mut found_back = false;
        for (_, ch) in h.graph().channels() {
            if ch.src() == a0 && ch.dst() == a1 && ch.initial_tokens() == 0 {
                found_fwd = true;
            }
            if ch.src() == a1 && ch.dst() == a0 && ch.initial_tokens() == 1 {
                found_back = true;
            }
        }
        assert!(found_fwd && found_back);
    }
}
