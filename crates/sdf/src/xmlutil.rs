//! Minimal XML reading/writing used by the interchange formats.
//!
//! SDF3 exchanges models as XML; the paper's flow contribution is a
//! *common input format* consumed by both the mapping and the platform
//! generation tools (§2). This module implements the small XML subset those
//! formats need — elements, attributes, nesting; no namespaces, mixed
//! content, CDATA or processing instructions — with no external
//! dependencies.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An XML element tree.
#[derive(Debug, Clone)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in stable (sorted) order.
    pub attrs: BTreeMap<String, String>,
    /// Child elements.
    pub children: Vec<Element>,
    /// 1-based source line of the opening tag; 0 for built elements.
    pub line: usize,
}

/// Source position is diagnostic metadata: two trees are equal when
/// their names, attributes and children agree, wherever they were
/// parsed from.
impl PartialEq for Element {
    fn eq(&self, other: &Element) -> bool {
        self.name == other.name && self.attrs == other.attrs && self.children == other.children
    }
}

impl Eq for Element {}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Element {
        Element {
            name: name.into(),
            attrs: BTreeMap::new(),
            children: Vec::new(),
            line: 0,
        }
    }

    /// Adds an attribute (builder style).
    pub fn attr(mut self, key: impl Into<String>, value: impl ToString) -> Element {
        self.attrs.insert(key.into(), value.to_string());
        self
    }

    /// Adds a child (builder style).
    pub fn child(mut self, child: Element) -> Element {
        self.children.push(child);
        self
    }

    /// Looks up an attribute.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).map(|s| s.as_str())
    }

    /// Looks up a required attribute.
    ///
    /// # Errors
    ///
    /// [`XmlError::MissingAttr`] when absent.
    pub fn req(&self, key: &str) -> Result<&str, XmlError> {
        self.get(key)
            .ok_or_else(|| XmlError::MissingAttr(self.name.clone(), key.to_string(), self.line))
    }

    /// Parses a required attribute as an integer type.
    ///
    /// # Errors
    ///
    /// [`XmlError::MissingAttr`] / [`XmlError::BadValue`].
    pub fn req_u64(&self, key: &str) -> Result<u64, XmlError> {
        self.req(key)?
            .parse()
            .map_err(|_| XmlError::BadValue(self.name.clone(), key.to_string(), self.line))
    }

    /// Children with the given tag name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// First child with the given tag name.
    pub fn find(&self, name: &str) -> Option<&Element> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Renders the tree as indented XML.
    pub fn to_xml(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\"?>\n");
        self.render(&mut out, 0);
        out
    }

    fn render(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let _ = write!(out, "{pad}<{}", self.name);
        for (k, v) in &self.attrs {
            let _ = write!(out, " {k}=\"{}\"", escape(v));
        }
        if self.children.is_empty() {
            out.push_str("/>\n");
        } else {
            out.push_str(">\n");
            for c in &self.children {
                c.render(out, depth + 1);
            }
            let _ = writeln!(out, "{pad}</{}>", self.name);
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    s.replace("&quot;", "\"")
        .replace("&gt;", ">")
        .replace("&lt;", "<")
        .replace("&amp;", "&")
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Malformed syntax; the message carries line/column context.
    Syntax(String),
    /// Closing tag does not match the open element: (open, close, line).
    Mismatch(String, String, usize),
    /// Required attribute missing: (element, attribute, line).
    MissingAttr(String, String, usize),
    /// Attribute value failed to parse: (element, attribute, line).
    BadValue(String, String, usize),
    /// Structural problem above the XML level (wrong root, unknown refs).
    Semantic(String),
}

/// ` (line N)` when the position is known, nothing for built elements.
fn at_line(line: &usize) -> String {
    if *line == 0 {
        String::new()
    } else {
        format!(" (line {line})")
    }
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XmlError::Syntax(m) => write!(f, "xml syntax error: {m}"),
            XmlError::Mismatch(open, close, line) => {
                write!(
                    f,
                    "mismatched tags: <{open}> closed by </{close}>{}",
                    at_line(line)
                )
            }
            XmlError::MissingAttr(e, a, line) => {
                write!(f, "element <{e}>{} misses attribute `{a}`", at_line(line))
            }
            XmlError::BadValue(e, a, line) => {
                write!(f, "element <{e}>{}: bad value for `{a}`", at_line(line))
            }
            XmlError::Semantic(m) => write!(f, "invalid document: {m}"),
        }
    }
}

impl std::error::Error for XmlError {}

/// Parses a document into its root element.
///
/// # Errors
///
/// [`XmlError`] on malformed input.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_prolog();
    let root = p.element()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(XmlError::Syntax(format!(
            "trailing content at {}",
            p.position()
        )));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// 1-based line of the current position.
    fn line(&self) -> usize {
        1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
    }

    /// `line L, column C` of the current position, for syntax errors.
    fn position(&self) -> String {
        let upto = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = 1 + upto.iter().filter(|&&b| b == b'\n').count();
        let col = 1 + upto.iter().rev().take_while(|&&b| b != b'\n').count();
        format!("line {line}, column {col}")
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) {
        self.skip_ws();
        loop {
            if self.rest().starts_with("<?") {
                if let Some(end) = self.rest().find("?>") {
                    self.pos += end + 2;
                }
            } else if self.rest().starts_with("<!--") {
                if let Some(end) = self.rest().find("-->") {
                    self.pos += end + 3;
                }
            } else {
                break;
            }
            self.skip_ws();
        }
    }

    fn rest(&self) -> &'a str {
        std::str::from_utf8(&self.bytes[self.pos..]).unwrap_or("")
    }

    fn expect(&mut self, c: u8) -> Result<(), XmlError> {
        if self.pos < self.bytes.len() && self.bytes[self.pos] == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(XmlError::Syntax(format!(
                "expected `{}` at {}",
                c as char,
                self.position()
            )))
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_alphanumeric()
                || matches!(self.bytes[self.pos], b'_' | b'-' | b':' | b'.'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(XmlError::Syntax(format!(
                "expected a name at {}",
                self.position()
            )));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn element(&mut self) -> Result<Element, XmlError> {
        self.skip_ws();
        let open_line = self.line();
        self.expect(b'<')?;
        let name = self.name()?;
        let mut el = Element::new(&name);
        el.line = open_line;
        loop {
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(el);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    self.expect(b'"')?;
                    let start = self.pos;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'"' {
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.expect(b'"')?;
                    el.attrs.insert(key, unescape(&raw));
                }
                None => {
                    return Err(XmlError::Syntax("unexpected end of input".into()));
                }
            }
        }
        // Children until the closing tag.
        loop {
            self.skip_ws();
            if self.rest().starts_with("<!--") {
                if let Some(end) = self.rest().find("-->") {
                    self.pos += end + 3;
                    continue;
                }
                return Err(XmlError::Syntax("unterminated comment".into()));
            }
            if self.rest().starts_with("</") {
                let close_line = self.line();
                self.pos += 2;
                let close = self.name()?;
                self.skip_ws();
                self.expect(b'>')?;
                if close != name {
                    return Err(XmlError::Mismatch(name, close, close_line));
                }
                return Ok(el);
            }
            if self.rest().starts_with('<') {
                el.children.push(self.element()?);
            } else {
                // Text content is not part of the interchange subset; skip
                // up to the next tag.
                match self.rest().find('<') {
                    Some(off) if off > 0 => self.pos += off,
                    _ => return Err(XmlError::Syntax("unexpected end of element".into())),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let doc = Element::new("root")
            .attr("name", "demo")
            .child(
                Element::new("child")
                    .attr("value", "42")
                    .child(Element::new("leaf")),
            )
            .child(Element::new("child").attr("value", "43"));
        let xml = doc.to_xml();
        let parsed = parse(&xml).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn attribute_escaping() {
        let doc = Element::new("e").attr("text", "a<b & \"c\" > d");
        let parsed = parse(&doc.to_xml()).unwrap();
        assert_eq!(parsed.get("text"), Some("a<b & \"c\" > d"));
    }

    #[test]
    fn queries() {
        let doc = Element::new("root")
            .child(Element::new("a").attr("n", "1"))
            .child(Element::new("b"))
            .child(Element::new("a").attr("n", "2"));
        assert_eq!(doc.find_all("a").count(), 2);
        assert_eq!(doc.find("b").unwrap().name, "b");
        assert!(doc.find("c").is_none());
        assert_eq!(doc.find("a").unwrap().req_u64("n").unwrap(), 1);
    }

    #[test]
    fn prolog_and_comments_skipped() {
        let xml =
            "<?xml version=\"1.0\"?>\n<!-- hello -->\n<root>\n<!-- inner -->\n<leaf/>\n</root>";
        let parsed = parse(xml).unwrap();
        assert_eq!(parsed.name, "root");
        assert_eq!(parsed.children.len(), 1);
    }

    #[test]
    fn errors() {
        assert!(matches!(
            parse("<a><b></a>"),
            Err(XmlError::Mismatch(_, _, _))
        ));
        assert!(matches!(parse("<a"), Err(XmlError::Syntax(_))));
        assert!(matches!(parse("<a/><b/>"), Err(XmlError::Syntax(_))));
        let e = Element::new("x");
        assert!(matches!(e.req("k"), Err(XmlError::MissingAttr(_, _, _))));
        let e = Element::new("x").attr("k", "notanumber");
        assert!(matches!(e.req_u64("k"), Err(XmlError::BadValue(_, _, _))));
    }

    #[test]
    fn errors_carry_line_numbers() {
        // Parsed elements remember their opening-tag line...
        let doc = parse("<root>\n  <child/>\n  <child\n    deep=\"1\"/>\n</root>").unwrap();
        assert_eq!(doc.line, 1);
        assert_eq!(doc.children[0].line, 2);
        assert_eq!(doc.children[1].line, 3);
        // ...and attribute errors report them.
        let e = doc.children[1].req("missing").unwrap_err();
        assert_eq!(
            e.to_string(),
            "element <child> (line 3) misses attribute `missing`"
        );
        // Syntax errors report line and column.
        let e = parse("<root>\n  <bad att></root>").unwrap_err();
        assert_eq!(
            e.to_string(),
            "xml syntax error: expected `=` at line 2, column 11"
        );
        // Mismatches report the closing tag's line.
        let e = parse("<a>\n<b>\n</c>\n</a>").unwrap_err();
        assert_eq!(
            e.to_string(),
            "mismatched tags: <b> closed by </c> (line 3)"
        );
        // Hand-built elements have no position and none is printed.
        let e = Element::new("x").req("k").unwrap_err();
        assert_eq!(e.to_string(), "element <x> misses attribute `k`");
    }

    #[test]
    fn whitespace_tolerant() {
        let xml = "  <root   a = \"1\"  >  <leaf\n/>  </root>  ";
        let parsed = parse(xml).unwrap();
        assert_eq!(parsed.get("a"), Some("1"));
        assert_eq!(parsed.children.len(), 1);
    }
}
