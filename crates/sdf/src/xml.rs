//! SDF3-style XML interchange for application models.
//!
//! The flow's §2 contribution is a *common input format* shared by the
//! mapping and platform-generation tools. This module serializes
//! [`ApplicationModel`]s to an SDF3-inspired XML dialect and parses them
//! back, so application models can be authored by hand or exchanged with
//! other tools.
//!
//! ```xml
//! <applicationGraph name="mjpeg">
//!   <actor name="VLD" executionTime="35766">
//!     <implementation processorType="microblaze" function="actor_vld"
//!                     wcet="35766" imem="14336" dmem="6144">
//!       <arg index="0" channel="vld2iqzz" direction="out"/>
//!     </implementation>
//!   </actor>
//!   <channel name="vld2iqzz" srcActor="VLD" srcRate="10"
//!            dstActor="IQZZ" dstRate="1" initialTokens="0" tokenSize="128"/>
//!   <throughputConstraint iterations="1" cycles="100000"/>
//! </applicationGraph>
//! ```

use std::collections::HashMap;

use crate::graph::{SdfGraph, SdfGraphBuilder};
use crate::model::{
    ActorImplementation, ApplicationModel, ArgBinding, ArgDirection, ThroughputConstraint,
};
use crate::xmlutil::{parse, Element, XmlError};

/// Serializes an application model to XML.
pub fn application_to_xml(app: &ApplicationModel) -> String {
    let graph = app.graph();
    let mut root = Element::new("applicationGraph").attr("name", graph.name());
    for (aid, actor) in graph.actors() {
        let mut actor_el = Element::new("actor")
            .attr("name", actor.name())
            .attr("executionTime", actor.execution_time());
        for im in app.implementations(aid) {
            let mut im_el = Element::new("implementation")
                .attr("processorType", &im.processor_type)
                .attr("function", &im.function_name)
                .attr("wcet", im.wcet)
                .attr("imem", im.instruction_memory)
                .attr("dmem", im.data_memory);
            for arg in &im.args {
                im_el = im_el.child(
                    Element::new("arg")
                        .attr("index", arg.arg_index)
                        .attr("channel", &arg.channel)
                        .attr(
                            "direction",
                            match arg.direction {
                                ArgDirection::Input => "in",
                                ArgDirection::Output => "out",
                            },
                        ),
                );
            }
            actor_el = actor_el.child(im_el);
        }
        root = root.child(actor_el);
    }
    for (_, ch) in graph.channels() {
        root = root.child(
            Element::new("channel")
                .attr("name", ch.name())
                .attr("srcActor", graph.actor(ch.src()).name())
                .attr("srcRate", ch.production_rate())
                .attr("dstActor", graph.actor(ch.dst()).name())
                .attr("dstRate", ch.consumption_rate())
                .attr("initialTokens", ch.initial_tokens())
                .attr("tokenSize", ch.token_size()),
        );
    }
    if let Some(c) = app.throughput_constraint() {
        root = root.child(
            Element::new("throughputConstraint")
                .attr("iterations", c.iterations)
                .attr("cycles", c.cycles),
        );
    }
    root.to_xml()
}

/// Parses an application model from XML.
///
/// # Errors
///
/// [`XmlError`] on malformed XML or inconsistent references; model
/// validation failures surface as [`XmlError::Semantic`].
pub fn application_from_xml(xml: &str) -> Result<ApplicationModel, XmlError> {
    let root = parse(xml)?;
    if root.name != "applicationGraph" {
        return Err(XmlError::Semantic(format!(
            "expected <applicationGraph>, found <{}>",
            root.name
        )));
    }
    let mut b = SdfGraphBuilder::new(root.req("name")?);
    let mut ids = HashMap::new();
    let mut implementations: HashMap<String, Vec<ActorImplementation>> = HashMap::new();
    for actor_el in root.find_all("actor") {
        let name = actor_el.req("name")?.to_string();
        let exec = actor_el.req_u64("executionTime")?;
        let id = b.add_actor(&name, exec);
        ids.insert(name.clone(), id);
        let mut impls = Vec::new();
        for im_el in actor_el.find_all("implementation") {
            let mut args = Vec::new();
            for arg_el in im_el.find_all("arg") {
                args.push(ArgBinding {
                    arg_index: arg_el.req_u64("index")? as usize,
                    channel: arg_el.req("channel")?.to_string(),
                    direction: match arg_el.req("direction")? {
                        "in" => ArgDirection::Input,
                        "out" => ArgDirection::Output,
                        other => {
                            return Err(XmlError::Semantic(format!(
                                "direction `{other}` is not in/out"
                            )))
                        }
                    },
                });
            }
            impls.push(ActorImplementation {
                processor_type: im_el.req("processorType")?.to_string(),
                function_name: im_el.req("function")?.to_string(),
                wcet: im_el.req_u64("wcet")?,
                instruction_memory: im_el.req_u64("imem")?,
                data_memory: im_el.req_u64("dmem")?,
                args,
            });
        }
        implementations.insert(name, impls);
    }
    for ch_el in root.find_all("channel") {
        let src = *ids.get(ch_el.req("srcActor")?).ok_or_else(|| {
            XmlError::Semantic(format!(
                "channel `{}` references unknown srcActor",
                ch_el.req("name").unwrap_or("?")
            ))
        })?;
        let dst = *ids.get(ch_el.req("dstActor")?).ok_or_else(|| {
            XmlError::Semantic(format!(
                "channel `{}` references unknown dstActor",
                ch_el.req("name").unwrap_or("?")
            ))
        })?;
        b.add_channel_full(
            ch_el.req("name")?,
            src,
            ch_el.req_u64("srcRate")?,
            dst,
            ch_el.req_u64("dstRate")?,
            ch_el.req_u64("initialTokens")?,
            ch_el.req_u64("tokenSize")?,
        );
    }
    let graph: SdfGraph = b.build().map_err(|e| XmlError::Semantic(e.to_string()))?;
    let constraint = match root.find("throughputConstraint") {
        Some(c) => Some(ThroughputConstraint {
            iterations: c.req_u64("iterations")?,
            cycles: c.req_u64("cycles")?,
        }),
        None => None,
    };
    ApplicationModel::new(graph, implementations, constraint)
        .map_err(|e| XmlError::Semantic(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::HomogeneousModelBuilder;

    fn sample() -> ApplicationModel {
        let mut b = SdfGraphBuilder::new("app");
        let x = b.add_actor("x", 10);
        let y = b.add_actor("y", 20);
        b.add_channel_full("e", x, 2, y, 3, 1, 64);
        b.add_channel_with_tokens("sx", x, 1, x, 1, 1);
        let g = b.build().unwrap();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("x", 10, 2048, 128).actor("y", 20, 4096, 256);
        mb.finish(
            g,
            Some(ThroughputConstraint {
                iterations: 1,
                cycles: 500,
            }),
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let app = sample();
        let xml = application_to_xml(&app);
        let back = application_from_xml(&xml).unwrap();
        let (g1, g2) = (app.graph(), back.graph());
        assert_eq!(g1.name(), g2.name());
        assert_eq!(g1.actor_count(), g2.actor_count());
        assert_eq!(g1.channel_count(), g2.channel_count());
        for (id, c1) in g1.channels() {
            let c2 = g2.channel(g2.channel_by_name(c1.name()).unwrap());
            assert_eq!(c1.production_rate(), c2.production_rate());
            assert_eq!(c1.consumption_rate(), c2.consumption_rate());
            assert_eq!(c1.initial_tokens(), c2.initial_tokens());
            assert_eq!(c1.token_size(), c2.token_size());
            let _ = id;
        }
        assert_eq!(app.throughput_constraint(), back.throughput_constraint());
        let x1 = app.graph().actor_by_name("x").unwrap();
        let x2 = back.graph().actor_by_name("x").unwrap();
        assert_eq!(
            app.implementation_for(x1, "microblaze").unwrap().args,
            back.implementation_for(x2, "microblaze").unwrap().args
        );
    }

    #[test]
    fn hand_written_document_parses() {
        let xml = r#"
<applicationGraph name="tiny">
  <actor name="a" executionTime="5">
    <implementation processorType="microblaze" function="actor_a"
                    wcet="5" imem="100" dmem="10">
      <arg index="0" channel="e" direction="out"/>
    </implementation>
  </actor>
  <actor name="b" executionTime="7">
    <implementation processorType="microblaze" function="actor_b"
                    wcet="7" imem="100" dmem="10">
      <arg index="0" channel="e" direction="in"/>
    </implementation>
  </actor>
  <channel name="e" srcActor="a" srcRate="1" dstActor="b" dstRate="1"
           initialTokens="0" tokenSize="4"/>
</applicationGraph>"#;
        let app = application_from_xml(xml).unwrap();
        assert_eq!(app.graph().actor_count(), 2);
        assert!(app.throughput_constraint().is_none());
    }

    #[test]
    fn unknown_actor_reference_rejected() {
        let xml = r#"
<applicationGraph name="bad">
  <actor name="a" executionTime="5">
    <implementation processorType="m" function="f" wcet="5" imem="0" dmem="0"/>
  </actor>
  <channel name="e" srcActor="a" srcRate="1" dstActor="ghost" dstRate="1"
           initialTokens="0" tokenSize="4"/>
</applicationGraph>"#;
        assert!(matches!(
            application_from_xml(xml),
            Err(XmlError::Semantic(_))
        ));
    }

    #[test]
    fn wrong_root_rejected() {
        assert!(matches!(
            application_from_xml("<notAGraph name=\"x\"/>"),
            Err(XmlError::Semantic(_))
        ));
    }

    #[test]
    fn bad_direction_rejected() {
        let xml = r#"
<applicationGraph name="bad">
  <actor name="a" executionTime="5">
    <implementation processorType="m" function="f" wcet="5" imem="0" dmem="0">
      <arg index="0" channel="e" direction="sideways"/>
    </implementation>
  </actor>
  <actor name="b" executionTime="5">
    <implementation processorType="m" function="g" wcet="5" imem="0" dmem="0"/>
  </actor>
  <channel name="e" srcActor="a" srcRate="1" dstActor="b" dstRate="1"
           initialTokens="0" tokenSize="4"/>
</applicationGraph>"#;
        assert!(matches!(
            application_from_xml(xml),
            Err(XmlError::Semantic(_))
        ));
    }
}
