//! Worst-case throughput analysis via self-timed state-space execution.
//!
//! This is the SDF3 throughput algorithm (Ghamarian et al., *Throughput
//! Analysis of Synchronous Data Flow Graphs*, ACSD 2006) used by the paper:
//! execute the timed graph self-timed (every actor fires as soon as it is
//! ready), record the state after each time step, and detect the periodic
//! phase as the first recurrent state. The *throughput* is the long-term
//! average number of graph iterations per time unit (paper §5), where the
//! time unit is the platform clock cycle.
//!
//! With unbounded channels, only strongly connected components (SCCs) have a
//! finite state space: channel fill on cross-SCC edges grows without bound
//! when the producer is faster. The analysis therefore decomposes the graph
//! into SCCs, analyses each in isolation (external inputs are then always
//! available), and takes the minimum rate — the classic decomposition for
//! self-timed execution with unbounded buffers. Graphs whose channels all
//! have finite capacities (modelled as reverse channels, see
//! [`crate::transform`]) are strongly connected by construction, so the
//! decomposition is exact for the bound graphs produced by the mapping flow.
//!
//! Auto-concurrency (multiple simultaneous firings of one actor) is disabled
//! by default, matching both SDF3's default and the MAMPS implementation in
//! which each actor is a single task on a single processor.

use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

use crate::error::SdfError;
use crate::graph::{ActorId, SdfGraph, SdfGraphBuilder};
use crate::liveness::check_liveness;
use crate::ratio::Ratio;
use crate::repetition::repetition_vector;

/// Options controlling the state-space exploration.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Allow multiple concurrent firings of the same actor. Off by default
    /// (each actor is one task on one processor). When enabled, actors whose
    /// concurrency is not bounded by any cycle have unconstrained rate.
    pub auto_concurrency: bool,
    /// Safety cap on distinct explored states per SCC before giving up.
    pub max_states: usize,
    /// Safety cap on firings started within a single time instant; exceeding
    /// it indicates a zero-delay cycle.
    pub max_firings_per_instant: usize,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            auto_concurrency: false,
            max_states: 1_000_000,
            max_firings_per_instant: 1_000_000,
        }
    }
}

/// Outcome of a throughput analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputResult {
    /// Long-term average iterations per clock cycle, exact.
    pub iterations_per_cycle: Ratio,
    /// Transient prefix of the bottleneck component, in cycles.
    pub transient_cycles: u64,
    /// Period of the bottleneck component, in cycles.
    pub period_cycles: u64,
    /// Local iterations completed per period in the bottleneck component.
    pub iterations_per_period: u64,
    /// Total distinct states explored (summed over components).
    pub states_explored: usize,
}

impl ThroughputResult {
    /// Throughput as a floating-point value (iterations per cycle).
    pub fn as_f64(&self) -> f64 {
        self.iterations_per_cycle.to_f64()
    }

    /// Cycle count per iteration (the reciprocal), as `f64`; `inf` when the
    /// throughput is zero.
    pub fn cycles_per_iteration(&self) -> f64 {
        if self.iterations_per_cycle.is_zero() {
            f64::INFINITY
        } else {
            self.iterations_per_cycle.recip().to_f64()
        }
    }
}

/// Computes the self-timed worst-case throughput of `graph` in graph
/// iterations per clock cycle.
///
/// # Errors
///
/// * Consistency errors from [`repetition_vector`].
/// * [`SdfError::Deadlock`] if the graph cannot complete an iteration.
/// * [`SdfError::AnalysisLimit`] on zero-delay cycles, state explosion, or
///   when no component bounds the rate (all actors have zero execution
///   time), in which case the throughput is unbounded.
///
/// # Examples
///
/// ```
/// use mamps_sdf::graph::SdfGraphBuilder;
/// use mamps_sdf::state_space::{throughput, AnalysisOptions};
///
/// // Two actors in a cycle with one token: period = 3 + 7 cycles.
/// let mut b = SdfGraphBuilder::new("pair");
/// let a = b.add_actor("A", 3);
/// let c = b.add_actor("B", 7);
/// b.add_channel_with_tokens("f", a, 1, c, 1, 1);
/// b.add_channel("r", c, 1, a, 1);
/// let g = b.build().unwrap();
/// let t = throughput(&g, &AnalysisOptions::default()).unwrap();
/// assert_eq!(t.as_f64(), 0.1);
/// ```
pub fn throughput(graph: &SdfGraph, opts: &AnalysisOptions) -> Result<ThroughputResult, SdfError> {
    let q = repetition_vector(graph)?;
    if graph.actor_count() == 0 {
        return Err(SdfError::InvalidGraph("empty graph".into()));
    }
    // Exact deadlock detection on the whole graph (cheap, untimed).
    check_liveness(graph)?;

    let sccs = strongly_connected_components(graph);
    let mut best: Option<ThroughputResult> = None;

    for scc in &sccs {
        let candidate = if scc.len() == 1 {
            let a = scc[0];
            let has_self_edge = graph
                .outgoing(a)
                .iter()
                .any(|&c| graph.channel(c).is_self_edge());
            if has_self_edge {
                scc_state_space(graph, scc, &q, opts)?
            } else {
                let exec = graph.actor(a).execution_time();
                if exec == 0 || opts.auto_concurrency {
                    // Unconstrained rate: does not bound the graph.
                    continue;
                }
                // One firing per `exec` cycles; one global iteration needs
                // q[a] firings.
                Some(ThroughputResult {
                    iterations_per_cycle: Ratio::new(1, (exec * q.of(a)) as i128),
                    transient_cycles: 0,
                    period_cycles: exec * q.of(a),
                    iterations_per_period: 1,
                    states_explored: 1,
                })
            }
        } else {
            scc_state_space(graph, scc, &q, opts)?
        };
        if let Some(c) = candidate {
            best = Some(match best {
                None => c,
                Some(b) => {
                    if c.iterations_per_cycle < b.iterations_per_cycle {
                        ThroughputResult {
                            states_explored: b.states_explored + c.states_explored,
                            ..c
                        }
                    } else {
                        ThroughputResult {
                            states_explored: b.states_explored + c.states_explored,
                            ..b
                        }
                    }
                }
            });
        }
    }

    best.ok_or_else(|| {
        SdfError::AnalysisLimit(
            "throughput unbounded: no component constrains the firing rate".into(),
        )
    })
}

/// Runs the self-timed state-space exploration on one SCC in isolation and
/// converts its local rate to global iterations per cycle.
///
/// Returns `Ok(None)` when the component does not constrain the rate.
fn scc_state_space(
    graph: &SdfGraph,
    scc: &[ActorId],
    q_global: &crate::repetition::RepetitionVector,
    opts: &AnalysisOptions,
) -> Result<Option<ThroughputResult>, SdfError> {
    // Build the induced subgraph.
    let mut b = SdfGraphBuilder::new(format!("{}:scc", graph.name()));
    let mut local_of: HashMap<ActorId, ActorId> = HashMap::new();
    for &a in scc {
        let la = b.add_actor(graph.actor(a).name(), graph.actor(a).execution_time());
        local_of.insert(a, la);
    }
    for (_, ch) in graph.channels() {
        if let (Some(&ls), Some(&ld)) = (local_of.get(&ch.src()), local_of.get(&ch.dst())) {
            b.add_channel_full(
                ch.name(),
                ls,
                ch.production_rate(),
                ld,
                ch.consumption_rate(),
                ch.initial_tokens(),
                ch.token_size(),
            );
        }
    }
    let sub = b
        .build()
        .expect("induced subgraph of a valid graph is valid");
    let q_local = repetition_vector(&sub)?;

    let local = self_timed_run(&sub, &q_local, opts)?;
    let local = match local {
        Some(l) => l,
        None => return Ok(None),
    };

    // Scale: one global iteration fires actor `a` q_global[a] times, which is
    // m local iterations with m = q_global[a] / q_local[local(a)].
    let a0 = scc[0];
    let m = q_global.of(a0) / q_local.of(local_of[&a0]);
    debug_assert!(m >= 1 && q_global.of(a0).is_multiple_of(q_local.of(local_of[&a0])));
    Ok(Some(ThroughputResult {
        iterations_per_cycle: local.iterations_per_cycle / Ratio::from_int(m as i128),
        ..local
    }))
}

/// Self-timed execution with recurrence detection on a strongly connected
/// (hence bounded) graph. Returns `None` if the graph has no timed actor.
fn self_timed_run(
    graph: &SdfGraph,
    q: &crate::repetition::RepetitionVector,
    opts: &AnalysisOptions,
) -> Result<Option<ThroughputResult>, SdfError> {
    let n = graph.actor_count();
    let reference = ActorId(0);
    let q_ref = q.of(reference);
    let exec: Vec<u64> = graph.actors().map(|(_, a)| a.execution_time()).collect();
    if exec.iter().all(|&e| e == 0) {
        return Ok(None);
    }
    let mut tokens: Vec<u64> = graph.channels().map(|(_, c)| c.initial_tokens()).collect();
    let cons: Vec<u64> = graph
        .channels()
        .map(|(_, c)| c.consumption_rate())
        .collect();
    let prod: Vec<u64> = graph.channels().map(|(_, c)| c.production_rate()).collect();

    let mut ongoing: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut busy: Vec<u64> = vec![0; n];
    let mut time: u64 = 0;
    let mut ref_completions: u64 = 0;
    let mut seen: HashMap<StateKey, (u64, u64)> = HashMap::new();

    loop {
        // Start phase: fire every ready actor as soon as possible. Zero-time
        // actors complete immediately so their outputs can enable more
        // firings at the same instant.
        let mut started_this_instant = 0usize;
        loop {
            let mut fired = false;
            for a in 0..n {
                loop {
                    if !opts.auto_concurrency && busy[a] > 0 {
                        break;
                    }
                    let ready = graph
                        .incoming(ActorId(a))
                        .iter()
                        .all(|&cid| tokens[cid.0] >= cons[cid.0]);
                    if !ready {
                        break;
                    }
                    for &cid in graph.incoming(ActorId(a)) {
                        tokens[cid.0] -= cons[cid.0];
                    }
                    started_this_instant += 1;
                    if started_this_instant > opts.max_firings_per_instant {
                        return Err(SdfError::AnalysisLimit(format!(
                            "more than {} firings at cycle {time}; zero-delay cycle or \
                             unbounded auto-concurrency",
                            opts.max_firings_per_instant
                        )));
                    }
                    fired = true;
                    if exec[a] == 0 {
                        for &cid in graph.outgoing(ActorId(a)) {
                            tokens[cid.0] += prod[cid.0];
                        }
                        if a == reference.0 {
                            ref_completions += 1;
                        }
                    } else {
                        busy[a] += 1;
                        ongoing.push(std::cmp::Reverse((time + exec[a], a)));
                        if !opts.auto_concurrency {
                            break;
                        }
                    }
                }
            }
            if !fired {
                break;
            }
        }

        // Snapshot the state after all starts at this instant.
        let key = StateKey::capture(&tokens, &ongoing, time);
        match seen.entry(key) {
            Entry::Occupied(prev) => {
                let (t0, c0) = *prev.get();
                let period = time - t0;
                let firings = ref_completions - c0;
                debug_assert!(period > 0, "time advances between snapshots");
                debug_assert!(firings.is_multiple_of(q_ref));
                let iterations = firings / q_ref;
                return Ok(Some(ThroughputResult {
                    iterations_per_cycle: if iterations == 0 {
                        Ratio::ZERO
                    } else {
                        Ratio::new(iterations as i128, period as i128)
                    },
                    transient_cycles: t0,
                    period_cycles: period,
                    iterations_per_period: iterations,
                    states_explored: seen.len(),
                }));
            }
            Entry::Vacant(v) => {
                v.insert((time, ref_completions));
            }
        }
        if seen.len() > opts.max_states {
            return Err(SdfError::AnalysisLimit(format!(
                "state space exceeded {} states",
                opts.max_states
            )));
        }

        // Advance to the next completion.
        let std::cmp::Reverse((t_next, _)) = match ongoing.peek() {
            Some(&e) => e,
            None => {
                return Err(SdfError::Deadlock(format!(
                    "self-timed execution stalled at cycle {time}"
                )))
            }
        };
        time = t_next;
        while let Some(&std::cmp::Reverse((t, a))) = ongoing.peek() {
            if t != time {
                break;
            }
            ongoing.pop();
            busy[a] -= 1;
            for &cid in graph.outgoing(ActorId(a)) {
                tokens[cid.0] += prod[cid.0];
            }
            if a == reference.0 {
                ref_completions += 1;
            }
        }
    }
}

/// Tarjan's strongly-connected-components algorithm (iterative).
///
/// Returns components in reverse topological order; order is irrelevant to
/// the throughput computation.
pub fn strongly_connected_components(graph: &SdfGraph) -> Vec<Vec<ActorId>> {
    let n = graph.actor_count();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut result: Vec<Vec<ActorId>> = Vec::new();

    // Iterative Tarjan with an explicit work stack of (node, edge cursor).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&(v, cursor)) = work.last() {
            if cursor == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let out = graph.outgoing(ActorId(v));
            if cursor < out.len() {
                work.last_mut().expect("non-empty").1 += 1;
                let w = graph.channel(out[cursor]).dst().0;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        comp.push(ActorId(w));
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    result.push(comp);
                }
            }
        }
    }
    result
}

/// Hashable snapshot of an execution state: channel fill plus, per actor,
/// the sorted multiset of remaining execution times.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StateKey {
    tokens: Vec<u64>,
    remaining: Vec<(u32, u64)>,
}

impl StateKey {
    fn capture(
        tokens: &[u64],
        ongoing: &BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
        now: u64,
    ) -> StateKey {
        let mut remaining: Vec<(u32, u64)> = ongoing
            .iter()
            .map(|&std::cmp::Reverse((t, a))| (a as u32, t - now))
            .collect();
        remaining.sort_unstable();
        StateKey {
            tokens: tokens.to_vec(),
            remaining,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SdfGraphBuilder;

    fn opts() -> AnalysisOptions {
        AnalysisOptions::default()
    }

    #[test]
    fn two_actor_cycle_throughput() {
        let mut b = SdfGraphBuilder::new("pair");
        let a = b.add_actor("A", 3);
        let c = b.add_actor("B", 7);
        b.add_channel_with_tokens("f", a, 1, c, 1, 1);
        b.add_channel("r", c, 1, a, 1);
        let g = b.build().unwrap();
        let t = throughput(&g, &opts()).unwrap();
        assert_eq!(t.iterations_per_cycle, Ratio::new(1, 10));
    }

    #[test]
    fn pipeline_throughput_limited_by_slowest() {
        let mut b = SdfGraphBuilder::new("pipe");
        let a = b.add_actor("A", 2);
        let c = b.add_actor("B", 9);
        let d = b.add_actor("C", 4);
        b.add_channel("e1", a, 1, c, 1);
        b.add_channel("e2", c, 1, d, 1);
        let g = b.build().unwrap();
        let t = throughput(&g, &opts()).unwrap();
        assert_eq!(t.iterations_per_cycle, Ratio::new(1, 9));
    }

    #[test]
    fn multirate_graph() {
        // A (rate 2, exec 4) -> B (rate 1, exec 3); q = (1, 2).
        // A: 1 iteration per 4 cycles; B: 2 firings * 3 = 6 cycles/iteration.
        let mut b = SdfGraphBuilder::new("mr");
        let a = b.add_actor("A", 4);
        let c = b.add_actor("B", 3);
        b.add_channel("e", a, 2, c, 1);
        let g = b.build().unwrap();
        let t = throughput(&g, &opts()).unwrap();
        assert_eq!(t.iterations_per_cycle, Ratio::new(1, 6));
    }

    #[test]
    fn deadlocked_graph_reported() {
        let mut b = SdfGraphBuilder::new("dead");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel("f", a, 1, c, 1);
        b.add_channel("r", c, 1, a, 1);
        let g = b.build().unwrap();
        assert!(matches!(
            throughput(&g, &opts()),
            Err(SdfError::Deadlock(_))
        ));
    }

    #[test]
    fn zero_time_actor_in_chain() {
        let mut b = SdfGraphBuilder::new("zt");
        let a = b.add_actor("A", 5);
        let z = b.add_actor("Z", 0);
        let c = b.add_actor("B", 5);
        b.add_channel("e1", a, 1, z, 1);
        b.add_channel("e2", z, 1, c, 1);
        let g = b.build().unwrap();
        let t = throughput(&g, &opts()).unwrap();
        assert_eq!(t.iterations_per_cycle, Ratio::new(1, 5));
    }

    #[test]
    fn zero_delay_cycle_detected() {
        let mut b = SdfGraphBuilder::new("zdc");
        let a = b.add_actor("A", 0);
        b.add_channel_with_tokens("s", a, 1, a, 1, 1);
        let g = b.build().unwrap();
        let r = throughput(
            &g,
            &AnalysisOptions {
                max_firings_per_instant: 1000,
                ..opts()
            },
        );
        assert!(matches!(r, Err(SdfError::AnalysisLimit(_))));
    }

    #[test]
    fn all_zero_time_graph_unbounded() {
        let mut b = SdfGraphBuilder::new("zeros");
        let a = b.add_actor("A", 0);
        let c = b.add_actor("B", 0);
        b.add_channel("e", a, 1, c, 1);
        let g = b.build().unwrap();
        assert!(matches!(
            throughput(&g, &opts()),
            Err(SdfError::AnalysisLimit(_))
        ));
    }

    #[test]
    fn initial_tokens_pipeline_parallelism() {
        // Cycle A->B->A with 2 tokens allows overlapping: throughput limited
        // by max(execA, execB) not the sum.
        let mut b = SdfGraphBuilder::new("2tok");
        let a = b.add_actor("A", 6);
        let c = b.add_actor("B", 4);
        b.add_channel_with_tokens("f", a, 1, c, 1, 0);
        b.add_channel_with_tokens("r", c, 1, a, 1, 2);
        let g = b.build().unwrap();
        let t = throughput(&g, &opts()).unwrap();
        assert_eq!(t.iterations_per_cycle, Ratio::new(1, 6));
    }

    #[test]
    fn single_self_loop_actor() {
        let mut b = SdfGraphBuilder::new("one");
        let a = b.add_actor("A", 12);
        b.add_channel_with_tokens("s", a, 1, a, 1, 1);
        let g = b.build().unwrap();
        let t = throughput(&g, &opts()).unwrap();
        assert_eq!(t.iterations_per_cycle, Ratio::new(1, 12));
        assert_eq!(t.cycles_per_iteration(), 12.0);
    }

    #[test]
    fn self_edge_tokens_bound_concurrency() {
        // Self-edge with 2 tokens allows two overlapping firings; the
        // pipeline rate doubles compared to 1 token.
        let mk = |tokens: u64| {
            let mut b = SdfGraphBuilder::new("se");
            let a = b.add_actor("A", 10);
            b.add_channel_with_tokens("s", a, 1, a, 1, tokens);
            b.build().unwrap()
        };
        let one = throughput(
            &mk(1),
            &AnalysisOptions {
                auto_concurrency: true,
                ..opts()
            },
        )
        .unwrap();
        let two = throughput(
            &mk(2),
            &AnalysisOptions {
                auto_concurrency: true,
                ..opts()
            },
        )
        .unwrap();
        assert_eq!(one.iterations_per_cycle, Ratio::new(1, 10));
        assert_eq!(two.iterations_per_cycle, Ratio::new(2, 10));
    }

    #[test]
    fn fig2_throughput() {
        // Paper Fig. 2 graph with chosen execution times.
        let mut b = SdfGraphBuilder::new("fig2");
        let a = b.add_actor("A", 10);
        let bb = b.add_actor("B", 5);
        let c = b.add_actor("C", 7);
        b.add_channel("a2b", a, 2, bb, 1);
        b.add_channel("a2c", a, 1, c, 1);
        b.add_channel("b2c", bb, 1, c, 2);
        b.add_channel_with_tokens("selfA", a, 1, a, 1, 1);
        let g = b.build().unwrap();
        let t = throughput(&g, &opts()).unwrap();
        // Bottlenecks: A every 10 cycles; B 2x5=10 cycles; C 7 cycles.
        assert_eq!(t.iterations_per_cycle, Ratio::new(1, 10));
    }

    #[test]
    fn scc_decomposition() {
        let mut b = SdfGraphBuilder::new("sccs");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        let d = b.add_actor("C", 1);
        // Cycle A<->B, then edge to C.
        b.add_channel_with_tokens("f", a, 1, c, 1, 1);
        b.add_channel("r", c, 1, a, 1);
        b.add_channel("o", c, 1, d, 1);
        let g = b.build().unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 2);
        let sizes: Vec<usize> = sccs.iter().map(|s| s.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
    }

    #[test]
    fn throughput_monotone_in_execution_time() {
        let mk = |eb: u64| {
            let mut b = SdfGraphBuilder::new("m");
            let a = b.add_actor("A", 3);
            let c = b.add_actor("B", eb);
            b.add_channel_with_tokens("f", a, 2, c, 3, 6);
            b.add_channel("r", c, 3, a, 2);
            b.build().unwrap()
        };
        let mut last = f64::INFINITY;
        for eb in [1, 2, 4, 8, 16] {
            let t = throughput(&mk(eb), &opts()).unwrap().as_f64();
            assert!(t <= last + 1e-12);
            last = t;
        }
    }
}
