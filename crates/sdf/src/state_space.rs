//! Worst-case throughput analysis via self-timed state-space execution.
//!
//! This is the SDF3 throughput algorithm (Ghamarian et al., *Throughput
//! Analysis of Synchronous Data Flow Graphs*, ACSD 2006) used by the paper:
//! execute the timed graph self-timed (every actor fires as soon as it is
//! ready), record the state after each time step, and detect the periodic
//! phase as the first recurrent state. The *throughput* is the long-term
//! average number of graph iterations per time unit (paper §5), where the
//! time unit is the platform clock cycle.
//!
//! With unbounded channels, only strongly connected components (SCCs) have a
//! finite state space: channel fill on cross-SCC edges grows without bound
//! when the producer is faster. The analysis therefore decomposes the graph
//! into SCCs, analyses each in isolation (external inputs are then always
//! available), and takes the minimum rate — the classic decomposition for
//! self-timed execution with unbounded buffers. Graphs whose channels all
//! have finite capacities (modelled as reverse channels, see
//! [`crate::transform`]) are strongly connected by construction, so the
//! decomposition is exact for the bound graphs produced by the mapping flow.
//!
//! Auto-concurrency (multiple simultaneous firings of one actor) is disabled
//! by default, matching both SDF3's default and the MAMPS implementation in
//! which each actor is a single task on a single processor.
//!
//! # Kernel design
//!
//! The exploration is the innermost loop of the whole design flow (buffer
//! sizing, mapping and DSE all bottom out here), so the kernel is written to
//! be allocation-free per time instant:
//!
//! * The graph (or the SCC-induced subgraph, or the capacity-bounded variant
//!   of a graph) is flattened into a `KernelGraph`: CSR-style incoming and
//!   outgoing adjacency with the per-channel consumption/production rate
//!   stored inline next to the channel index, so the ready check touches one
//!   contiguous slice per actor.
//! * Instead of rescanning every actor after every firing (O(actors ×
//!   channels) per instant), a *ready worklist* revisits only actors whose
//!   input channels gained tokens or whose processor became free. Because
//!   self-timed firing is monotonic (producing tokens never disables another
//!   firing), the worklist exactly reaches the maximal firing set of each
//!   instant, and because that set is unique (confluence of dataflow
//!   firing), the explored states — and therefore throughput, transient and
//!   period — are bit-identical to the naive rescan in [`mod@reference`].
//! * State snapshots are encoded into a reused scratch buffer (`Vec<u64>`:
//!   channel fills followed by the sorted `(actor, remaining-time)` pairs of
//!   ongoing firings) and interned in a `HashMap<Box<[u64]>, _>` looked up
//!   by slice, so a revisited state costs zero allocations and a new state
//!   costs exactly one (its interned storage).
//! * All scratch buffers live in a `Scratch` value that is reused across
//!   SCC runs and — via [`crate::buffer::AnalysisCache`] — across the many
//!   re-analyses of greedy buffer growth.
//!
//! The pre-optimization implementation is retained verbatim in
//! [`mod@reference`] as the oracle for property tests and the before/after
//! kernel benchmark (`cargo bench -p mamps_bench --bench state_space`).

use std::collections::{BinaryHeap, HashMap};

use crate::error::SdfError;
use crate::graph::{ActorId, SdfGraph};
use crate::liveness::check_liveness;
use crate::ratio::{gcd, Ratio};
use crate::repetition::repetition_vector;

/// Options controlling the state-space exploration.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Allow multiple concurrent firings of the same actor. Off by default
    /// (each actor is one task on one processor). When enabled, actors whose
    /// concurrency is not bounded by any cycle have unconstrained rate.
    pub auto_concurrency: bool,
    /// Safety cap on distinct explored states per SCC before giving up.
    pub max_states: usize,
    /// Safety cap on firings started within a single time instant; exceeding
    /// it indicates a zero-delay cycle.
    pub max_firings_per_instant: usize,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            auto_concurrency: false,
            max_states: 1_000_000,
            max_firings_per_instant: 1_000_000,
        }
    }
}

/// Outcome of a throughput analysis.
///
/// Serializable so the global analysis cache ([`crate::cache`]) can persist
/// memoized results across processes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ThroughputResult {
    /// Long-term average iterations per clock cycle, exact.
    pub iterations_per_cycle: Ratio,
    /// Transient prefix of the bottleneck component, in cycles.
    pub transient_cycles: u64,
    /// Period of the bottleneck component, in cycles.
    pub period_cycles: u64,
    /// Local iterations completed per period in the bottleneck component.
    pub iterations_per_period: u64,
    /// Total distinct states explored (summed over components).
    pub states_explored: usize,
}

impl ThroughputResult {
    /// Throughput as a floating-point value (iterations per cycle).
    pub fn as_f64(&self) -> f64 {
        self.iterations_per_cycle.to_f64()
    }

    /// Cycle count per iteration (the reciprocal), as `f64`; `inf` when the
    /// throughput is zero.
    pub fn cycles_per_iteration(&self) -> f64 {
        if self.iterations_per_cycle.is_zero() {
            f64::INFINITY
        } else {
            self.iterations_per_cycle.recip().to_f64()
        }
    }
}

/// Computes the self-timed worst-case throughput of `graph` in graph
/// iterations per clock cycle.
///
/// # Errors
///
/// * Consistency errors from [`repetition_vector`].
/// * [`SdfError::Deadlock`] if the graph cannot complete an iteration.
/// * [`SdfError::AnalysisLimit`] on zero-delay cycles, state explosion, or
///   when no component bounds the rate (all actors have zero execution
///   time), in which case the throughput is unbounded.
///
/// # Examples
///
/// ```
/// use mamps_sdf::graph::SdfGraphBuilder;
/// use mamps_sdf::state_space::{throughput, AnalysisOptions};
///
/// // Two actors in a cycle with one token: period = 3 + 7 cycles.
/// let mut b = SdfGraphBuilder::new("pair");
/// let a = b.add_actor("A", 3);
/// let c = b.add_actor("B", 7);
/// b.add_channel_with_tokens("f", a, 1, c, 1, 1);
/// b.add_channel("r", c, 1, a, 1);
/// let g = b.build().unwrap();
/// let t = throughput(&g, &AnalysisOptions::default()).unwrap();
/// assert_eq!(t.as_f64(), 0.1);
/// ```
pub fn throughput(graph: &SdfGraph, opts: &AnalysisOptions) -> Result<ThroughputResult, SdfError> {
    let mut scratch = Scratch::default();
    throughput_with(graph, opts, &mut scratch)
}

/// [`throughput`] with caller-provided scratch space, so repeated analyses
/// (greedy buffer growth, DSE) reuse every internal allocation.
pub(crate) fn throughput_with(
    graph: &SdfGraph,
    opts: &AnalysisOptions,
    scratch: &mut Scratch,
) -> Result<ThroughputResult, SdfError> {
    let q = repetition_vector(graph)?;
    if graph.actor_count() == 0 {
        return Err(SdfError::InvalidGraph("empty graph".into()));
    }
    // Exact deadlock detection on the whole graph (cheap, untimed).
    check_liveness(graph)?;

    let sccs = strongly_connected_components(graph);
    let mut best: Option<ThroughputResult> = None;

    for scc in &sccs {
        let candidate = if scc.len() == 1 {
            let a = scc[0];
            let has_self_edge = graph
                .outgoing(a)
                .iter()
                .any(|&c| graph.channel(c).is_self_edge());
            if has_self_edge {
                scc_throughput(graph, scc, &q, opts, scratch)?
            } else {
                let exec = graph.actor(a).execution_time();
                if exec == 0 || opts.auto_concurrency {
                    // Unconstrained rate: does not bound the graph.
                    continue;
                }
                // One firing per `exec` cycles; one global iteration needs
                // q[a] firings.
                Some(ThroughputResult {
                    iterations_per_cycle: Ratio::new(1, (exec * q.of(a)) as i128),
                    transient_cycles: 0,
                    period_cycles: exec * q.of(a),
                    iterations_per_period: 1,
                    states_explored: 1,
                })
            }
        } else {
            scc_throughput(graph, scc, &q, opts, scratch)?
        };
        if let Some(c) = candidate {
            best = Some(match best {
                None => c,
                Some(b) => {
                    if c.iterations_per_cycle < b.iterations_per_cycle {
                        ThroughputResult {
                            states_explored: b.states_explored + c.states_explored,
                            ..c
                        }
                    } else {
                        ThroughputResult {
                            states_explored: b.states_explored + c.states_explored,
                            ..b
                        }
                    }
                }
            });
        }
    }

    best.ok_or_else(|| {
        SdfError::AnalysisLimit(
            "throughput unbounded: no component constrains the firing rate".into(),
        )
    })
}

/// Computes the throughput of `graph` bounded by per-channel buffer
/// `capacities`, equivalent to
/// `throughput(&with_buffer_capacities(graph, capacities)?, opts)` but
/// without materializing the bounded graph: the reverse channels are built
/// directly into the flattened kernel representation, and the SCC
/// decomposition is skipped because a connected graph becomes strongly
/// connected once every channel is back-pressured.
///
/// # Errors
///
/// * Capacity-vector validation errors from
///   [`crate::transform::validate_buffer_capacities`].
/// * The same analysis errors as [`throughput`] (deadlock is detected when
///   the self-timed execution stalls rather than by the untimed pre-check,
///   so only the message wording differs).
pub fn throughput_bounded(
    graph: &SdfGraph,
    capacities: &[u64],
    opts: &AnalysisOptions,
) -> Result<ThroughputResult, SdfError> {
    let mut scratch = Scratch::default();
    throughput_bounded_with(graph, capacities, opts, &mut scratch)
}

/// [`throughput_bounded`] with caller-provided scratch space.
pub(crate) fn throughput_bounded_with(
    graph: &SdfGraph,
    capacities: &[u64],
    opts: &AnalysisOptions,
    scratch: &mut Scratch,
) -> Result<ThroughputResult, SdfError> {
    crate::transform::validate_buffer_capacities(graph, capacities)?;
    // The reverse channels are balanced by the same repetition vector, so
    // the bounded graph shares `q` with the unbounded one.
    let q = repetition_vector(graph)?;
    if graph.actor_count() == 0 {
        return Err(SdfError::InvalidGraph("empty graph".into()));
    }

    scratch.kg.clear();
    for (_, a) in graph.actors() {
        scratch.kg.add_actor(a.execution_time());
    }
    for (_, ch) in graph.channels() {
        scratch.kg.add_channel(
            ch.src().0 as u32,
            ch.dst().0 as u32,
            ch.production_rate(),
            ch.consumption_rate(),
            ch.initial_tokens(),
        );
    }
    // Reverse channels in the same order `with_buffer_capacities` appends
    // them, so the explored state space is identical.
    for (cid, ch) in graph.channels() {
        if ch.is_self_edge() {
            continue;
        }
        scratch.kg.add_channel(
            ch.dst().0 as u32,
            ch.src().0 as u32,
            ch.consumption_rate(),
            ch.production_rate(),
            capacities[cid.0] - ch.initial_tokens(),
        );
    }
    scratch.kg.build_adjacency();

    let q_ref = q.of(ActorId(0));
    match run_kernel(scratch, q_ref, opts)? {
        Some(r) => Ok(r),
        None => Err(SdfError::AnalysisLimit(
            "throughput unbounded: no component constrains the firing rate".into(),
        )),
    }
}

/// Runs the kernel on the subgraph induced by one SCC and converts its local
/// rate to global iterations per cycle.
///
/// Returns `Ok(None)` when the component does not constrain the rate.
fn scc_throughput(
    graph: &SdfGraph,
    scc: &[ActorId],
    q_global: &crate::repetition::RepetitionVector,
    opts: &AnalysisOptions,
    scratch: &mut Scratch,
) -> Result<Option<ThroughputResult>, SdfError> {
    // Local repetition vector: an SCC is connected, so its solution space is
    // one-dimensional and the minimal local vector is the restriction of the
    // global one divided by its gcd. That gcd is also the scale factor: one
    // global iteration is `g0` local iterations.
    let g0 = scc.iter().fold(0u64, |g, &a| gcd(g, q_global.of(a)));
    debug_assert!(g0 >= 1);

    scratch.kg.clear();
    let n = graph.actor_count();
    scratch.global_to_local.clear();
    scratch.global_to_local.resize(n, u32::MAX);
    for (i, &a) in scc.iter().enumerate() {
        scratch.global_to_local[a.0] = i as u32;
        scratch.kg.add_actor(graph.actor(a).execution_time());
    }
    for (_, ch) in graph.channels() {
        let ls = scratch.global_to_local[ch.src().0];
        let ld = scratch.global_to_local[ch.dst().0];
        if ls != u32::MAX && ld != u32::MAX {
            scratch.kg.add_channel(
                ls,
                ld,
                ch.production_rate(),
                ch.consumption_rate(),
                ch.initial_tokens(),
            );
        }
    }
    scratch.kg.build_adjacency();

    let q_ref = q_global.of(scc[0]) / g0;
    let local = run_kernel(scratch, q_ref, opts)?;
    Ok(local.map(|l| ThroughputResult {
        iterations_per_cycle: l.iterations_per_cycle / Ratio::from_int(g0 as i128),
        ..l
    }))
}

/// One outgoing adjacency entry: the channel, its production rate, and the
/// consuming actor to requeue when tokens arrive.
#[derive(Debug, Clone, Copy, Default)]
struct OutEdge {
    ch: u32,
    dst: u32,
    prod: u64,
}

/// Flattened CSR-style graph view consumed by the kernel. Built from a whole
/// graph, an SCC-induced subgraph, or a capacity-bounded variant, without
/// going through [`crate::graph::SdfGraphBuilder`] (no name strings, no
/// validation re-runs).
#[derive(Debug, Default)]
struct KernelGraph {
    exec: Vec<u64>,
    init_tokens: Vec<u64>,
    ch_src: Vec<u32>,
    ch_dst: Vec<u32>,
    ch_prod: Vec<u64>,
    ch_cons: Vec<u64>,
    /// `in_list[in_off[a]..in_off[a+1]]` = `(channel, consumption rate)` of
    /// the channels entering actor `a`, in channel-id order.
    in_off: Vec<u32>,
    in_list: Vec<(u32, u64)>,
    out_off: Vec<u32>,
    out_list: Vec<OutEdge>,
}

impl KernelGraph {
    fn clear(&mut self) {
        self.exec.clear();
        self.init_tokens.clear();
        self.ch_src.clear();
        self.ch_dst.clear();
        self.ch_prod.clear();
        self.ch_cons.clear();
    }

    fn actor_count(&self) -> usize {
        self.exec.len()
    }

    fn channel_count(&self) -> usize {
        self.ch_src.len()
    }

    fn add_actor(&mut self, exec: u64) {
        self.exec.push(exec);
    }

    fn add_channel(&mut self, src: u32, dst: u32, prod: u64, cons: u64, tokens: u64) {
        self.ch_src.push(src);
        self.ch_dst.push(dst);
        self.ch_prod.push(prod);
        self.ch_cons.push(cons);
        self.init_tokens.push(tokens);
    }

    /// Builds the CSR adjacency from the accumulated channels, reusing the
    /// existing buffers. Channel order within each actor is ascending by
    /// channel id, matching [`SdfGraph::incoming`]/[`SdfGraph::outgoing`].
    fn build_adjacency(&mut self) {
        let n = self.actor_count();
        let m = self.channel_count();
        self.in_off.clear();
        self.in_off.resize(n + 1, 0);
        self.out_off.clear();
        self.out_off.resize(n + 1, 0);
        for i in 0..m {
            self.in_off[self.ch_dst[i] as usize + 1] += 1;
            self.out_off[self.ch_src[i] as usize + 1] += 1;
        }
        for a in 0..n {
            self.in_off[a + 1] += self.in_off[a];
            self.out_off[a + 1] += self.out_off[a];
        }
        self.in_list.clear();
        self.in_list.resize(m, (0, 0));
        self.out_list.clear();
        self.out_list.resize(m, OutEdge::default());
        // Fill using the offset arrays as cursors, then shift them back.
        for i in 0..m {
            let d = self.ch_dst[i] as usize;
            self.in_list[self.in_off[d] as usize] = (i as u32, self.ch_cons[i]);
            self.in_off[d] += 1;
            let s = self.ch_src[i] as usize;
            self.out_list[self.out_off[s] as usize] = OutEdge {
                ch: i as u32,
                dst: self.ch_dst[i],
                prod: self.ch_prod[i],
            };
            self.out_off[s] += 1;
        }
        for a in (1..=n).rev() {
            self.in_off[a] = self.in_off[a - 1];
            self.out_off[a] = self.out_off[a - 1];
        }
        if n > 0 {
            self.in_off[0] = 0;
            self.out_off[0] = 0;
        }
    }

    fn incoming(&self, a: usize) -> &[(u32, u64)] {
        &self.in_list[self.in_off[a] as usize..self.in_off[a + 1] as usize]
    }

    fn outgoing(&self, a: usize) -> &[OutEdge] {
        &self.out_list[self.out_off[a] as usize..self.out_off[a + 1] as usize]
    }
}

/// Interned store of visited states. Encoded state keys live back-to-back
/// in one arena (`[chain-next, key-length, time, ref-completions, key
/// words...]` records), indexed by a 64-bit FxHash through an
/// identity-hashed map, so a snapshot costs one hash of the scratch key
/// and — only for new states — one arena append. No per-state boxing, no
/// SipHash, no re-hashing of keys when the table grows. Hash collisions
/// are resolved along the per-bucket chain by comparing the stored key
/// length and then the exact key words (keys of one run vary in length
/// with the number of ongoing firings), so the exploration is oblivious to
/// the hash function.
#[derive(Debug, Default)]
struct StateTable {
    arena: Vec<u64>,
    index: HashMap<u64, u64, std::hash::BuildHasherDefault<IdentityHasher>>,
    len: usize,
}

impl StateTable {
    fn clear(&mut self) {
        self.arena.clear();
        self.index.clear();
        self.len = 0;
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Returns the `(time, ref_completions)` stored with `key` if it was
    /// seen before; otherwise interns it with the given values.
    fn get_or_insert(&mut self, key: &[u64], time: u64, completions: u64) -> Option<(u64, u64)> {
        let hash = fx_hash(key);
        let head = self.index.entry(hash).or_insert(0);
        let mut at = *head;
        while at != 0 {
            let base = (at - 1) as usize;
            if self.arena[base + 1] as usize == key.len()
                && &self.arena[base + 4..base + 4 + key.len()] == key
            {
                return Some((self.arena[base + 2], self.arena[base + 3]));
            }
            at = self.arena[base];
        }
        let base = self.arena.len();
        self.arena.push(*head);
        self.arena.push(key.len() as u64);
        self.arena.push(time);
        self.arena.push(completions);
        self.arena.extend_from_slice(key);
        *head = base as u64 + 1;
        self.len += 1;
        None
    }
}

/// FxHash (the rustc hash): one rotate-xor-multiply per word. Quality is
/// ample for 64-bit buckets over state keys, and it is an order of
/// magnitude cheaper than SipHash on the kilobyte-sized keys of large
/// graphs.
fn fx_hash(words: &[u64]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h: u64 = 0;
    for &w in words {
        h = (h.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
    h
}

/// Hasher for keys that already are hashes (the [`StateTable`] index).
#[derive(Debug, Default)]
struct IdentityHasher(u64);

impl std::hash::Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("identity hasher is only used with u64 keys");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// Reusable buffers of the kernel. One `Scratch` amortizes every allocation
/// of the exploration across SCC runs and across repeated analyses.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    kg: KernelGraph,
    global_to_local: Vec<u32>,
    tokens: Vec<u64>,
    busy: Vec<u32>,
    ongoing: BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
    queued: Vec<bool>,
    worklist: Vec<u32>,
    pairs: Vec<(u32, u64)>,
    key: Vec<u64>,
    seen: StateTable,
}

/// Self-timed execution with recurrence detection on the strongly connected
/// (hence bounded) graph in `scratch.kg`. Returns `None` if the graph has no
/// timed actor. `q_ref` is the local repetition count of actor 0, the
/// reference for counting completed iterations.
fn run_kernel(
    scratch: &mut Scratch,
    q_ref: u64,
    opts: &AnalysisOptions,
) -> Result<Option<ThroughputResult>, SdfError> {
    let Scratch {
        ref kg,
        ref mut tokens,
        ref mut busy,
        ref mut ongoing,
        ref mut queued,
        ref mut worklist,
        ref mut pairs,
        ref mut key,
        ref mut seen,
        ..
    } = *scratch;

    let n = kg.actor_count();
    if kg.exec.iter().all(|&e| e == 0) {
        return Ok(None);
    }
    tokens.clear();
    tokens.extend_from_slice(&kg.init_tokens);
    busy.clear();
    busy.resize(n, 0);
    ongoing.clear();
    queued.clear();
    queued.resize(n, true);
    worklist.clear();
    worklist.extend(0..n as u32);
    seen.clear();

    let mut time: u64 = 0;
    let mut ref_completions: u64 = 0;

    loop {
        // Start phase: fire every ready actor as soon as possible. Only
        // actors whose inputs gained tokens (or whose processor just became
        // free) are on the worklist; monotonicity of firing guarantees this
        // reaches the same maximal firing set as a full rescan. Zero-time
        // actors complete immediately so their outputs can enable more
        // firings at the same instant.
        let mut started_this_instant = 0usize;
        while let Some(a32) = worklist.pop() {
            let a = a32 as usize;
            queued[a] = false;
            loop {
                if !opts.auto_concurrency && busy[a] > 0 {
                    break;
                }
                let ins = kg.incoming(a);
                if !ins.iter().all(|&(ch, cons)| tokens[ch as usize] >= cons) {
                    break;
                }
                for &(ch, cons) in ins {
                    tokens[ch as usize] -= cons;
                }
                started_this_instant += 1;
                if started_this_instant > opts.max_firings_per_instant {
                    return Err(SdfError::AnalysisLimit(format!(
                        "more than {} firings at cycle {time}; zero-delay cycle or \
                         unbounded auto-concurrency",
                        opts.max_firings_per_instant
                    )));
                }
                if kg.exec[a] == 0 {
                    for e in kg.outgoing(a) {
                        tokens[e.ch as usize] += e.prod;
                        let d = e.dst as usize;
                        if !queued[d] {
                            queued[d] = true;
                            worklist.push(e.dst);
                        }
                    }
                    if a == 0 {
                        ref_completions += 1;
                    }
                } else {
                    busy[a] += 1;
                    ongoing.push(std::cmp::Reverse((time + kg.exec[a], a32)));
                    if !opts.auto_concurrency {
                        break;
                    }
                }
            }
        }

        // Snapshot the state after all starts at this instant: channel fills
        // followed by the sorted (actor, remaining) pairs of ongoing
        // firings, encoded into the reused key buffer.
        key.clear();
        key.extend_from_slice(tokens);
        pairs.clear();
        pairs.extend(
            ongoing
                .iter()
                .map(|&std::cmp::Reverse((t, a))| (a, t - time)),
        );
        pairs.sort_unstable();
        for &(a, rem) in pairs.iter() {
            key.push(a as u64);
            key.push(rem);
        }
        if let Some((t0, c0)) = seen.get_or_insert(key, time, ref_completions) {
            let period = time - t0;
            let firings = ref_completions - c0;
            debug_assert!(period > 0, "time advances between snapshots");
            debug_assert!(firings.is_multiple_of(q_ref));
            let iterations = firings / q_ref;
            return Ok(Some(ThroughputResult {
                iterations_per_cycle: if iterations == 0 {
                    Ratio::ZERO
                } else {
                    Ratio::new(iterations as i128, period as i128)
                },
                transient_cycles: t0,
                period_cycles: period,
                iterations_per_period: iterations,
                states_explored: seen.len(),
            }));
        }
        if seen.len() > opts.max_states {
            return Err(SdfError::AnalysisLimit(format!(
                "state space exceeded {} states",
                opts.max_states
            )));
        }

        // Advance to the next completion.
        let std::cmp::Reverse((t_next, _)) = match ongoing.peek() {
            Some(&e) => e,
            None => {
                return Err(SdfError::Deadlock(format!(
                    "self-timed execution stalled at cycle {time}"
                )))
            }
        };
        time = t_next;
        while let Some(&std::cmp::Reverse((t, a32))) = ongoing.peek() {
            if t != time {
                break;
            }
            ongoing.pop();
            let a = a32 as usize;
            busy[a] -= 1;
            for e in kg.outgoing(a) {
                tokens[e.ch as usize] += e.prod;
                let d = e.dst as usize;
                if !queued[d] {
                    queued[d] = true;
                    worklist.push(e.dst);
                }
            }
            if a == 0 {
                ref_completions += 1;
            }
            // The completing actor's processor is free again.
            if !queued[a] {
                queued[a] = true;
                worklist.push(a32);
            }
        }
    }
}

/// Tarjan's strongly-connected-components algorithm (iterative).
///
/// Returns components in reverse topological order; order is irrelevant to
/// the throughput computation.
pub fn strongly_connected_components(graph: &SdfGraph) -> Vec<Vec<ActorId>> {
    let n = graph.actor_count();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut result: Vec<Vec<ActorId>> = Vec::new();

    // Iterative Tarjan with an explicit work stack of (node, edge cursor).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&(v, cursor)) = work.last() {
            if cursor == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let out = graph.outgoing(ActorId(v));
            if cursor < out.len() {
                work.last_mut().expect("non-empty").1 += 1;
                let w = graph.channel(out[cursor]).dst().0;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        comp.push(ActorId(w));
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    result.push(comp);
                }
            }
        }
    }
    result
}

/// The pre-optimization state-space implementation, retained verbatim as the
/// oracle for the optimized kernel: property tests assert both return
/// identical results on randomized live multirate graphs, and the
/// `state_space` bench measures the speedup of the fast path against it.
///
/// Differences from the fast path: the induced subgraph of each SCC is
/// materialized through [`crate::graph::SdfGraphBuilder`], every time instant rescans all
/// actors against all channels, and every snapshot allocates a fresh
/// [`StateKey`](self) with a sorted copy of the ongoing-firing multiset.
pub mod reference {
    use std::collections::hash_map::Entry;
    use std::collections::{BinaryHeap, HashMap};

    use super::{strongly_connected_components, AnalysisOptions, ThroughputResult};
    use crate::error::SdfError;
    use crate::graph::{ActorId, SdfGraph, SdfGraphBuilder};
    use crate::liveness::check_liveness;
    use crate::ratio::Ratio;
    use crate::repetition::repetition_vector;

    /// Naive-rescan counterpart of [`super::throughput`].
    ///
    /// # Errors
    ///
    /// Identical to [`super::throughput`].
    pub fn throughput(
        graph: &SdfGraph,
        opts: &AnalysisOptions,
    ) -> Result<ThroughputResult, SdfError> {
        let q = repetition_vector(graph)?;
        if graph.actor_count() == 0 {
            return Err(SdfError::InvalidGraph("empty graph".into()));
        }
        check_liveness(graph)?;

        let sccs = strongly_connected_components(graph);
        let mut best: Option<ThroughputResult> = None;

        for scc in &sccs {
            let candidate = if scc.len() == 1 {
                let a = scc[0];
                let has_self_edge = graph
                    .outgoing(a)
                    .iter()
                    .any(|&c| graph.channel(c).is_self_edge());
                if has_self_edge {
                    scc_state_space(graph, scc, &q, opts)?
                } else {
                    let exec = graph.actor(a).execution_time();
                    if exec == 0 || opts.auto_concurrency {
                        continue;
                    }
                    Some(ThroughputResult {
                        iterations_per_cycle: Ratio::new(1, (exec * q.of(a)) as i128),
                        transient_cycles: 0,
                        period_cycles: exec * q.of(a),
                        iterations_per_period: 1,
                        states_explored: 1,
                    })
                }
            } else {
                scc_state_space(graph, scc, &q, opts)?
            };
            if let Some(c) = candidate {
                best = Some(match best {
                    None => c,
                    Some(b) => {
                        if c.iterations_per_cycle < b.iterations_per_cycle {
                            ThroughputResult {
                                states_explored: b.states_explored + c.states_explored,
                                ..c
                            }
                        } else {
                            ThroughputResult {
                                states_explored: b.states_explored + c.states_explored,
                                ..b
                            }
                        }
                    }
                });
            }
        }

        best.ok_or_else(|| {
            SdfError::AnalysisLimit(
                "throughput unbounded: no component constrains the firing rate".into(),
            )
        })
    }

    fn scc_state_space(
        graph: &SdfGraph,
        scc: &[ActorId],
        q_global: &crate::repetition::RepetitionVector,
        opts: &AnalysisOptions,
    ) -> Result<Option<ThroughputResult>, SdfError> {
        // Build the induced subgraph.
        let mut b = SdfGraphBuilder::new(format!("{}:scc", graph.name()));
        let mut local_of: HashMap<ActorId, ActorId> = HashMap::new();
        for &a in scc {
            let la = b.add_actor(graph.actor(a).name(), graph.actor(a).execution_time());
            local_of.insert(a, la);
        }
        for (_, ch) in graph.channels() {
            if let (Some(&ls), Some(&ld)) = (local_of.get(&ch.src()), local_of.get(&ch.dst())) {
                b.add_channel_full(
                    ch.name(),
                    ls,
                    ch.production_rate(),
                    ld,
                    ch.consumption_rate(),
                    ch.initial_tokens(),
                    ch.token_size(),
                );
            }
        }
        let sub = b
            .build()
            .expect("induced subgraph of a valid graph is valid");
        let q_local = repetition_vector(&sub)?;

        let local = self_timed_run(&sub, &q_local, opts)?;
        let local = match local {
            Some(l) => l,
            None => return Ok(None),
        };

        // Scale: one global iteration fires actor `a` q_global[a] times,
        // which is m local iterations with m = q_global[a] / q_local[a].
        let a0 = scc[0];
        let m = q_global.of(a0) / q_local.of(local_of[&a0]);
        debug_assert!(m >= 1 && q_global.of(a0).is_multiple_of(q_local.of(local_of[&a0])));
        Ok(Some(ThroughputResult {
            iterations_per_cycle: local.iterations_per_cycle / Ratio::from_int(m as i128),
            ..local
        }))
    }

    fn self_timed_run(
        graph: &SdfGraph,
        q: &crate::repetition::RepetitionVector,
        opts: &AnalysisOptions,
    ) -> Result<Option<ThroughputResult>, SdfError> {
        let n = graph.actor_count();
        let reference = ActorId(0);
        let q_ref = q.of(reference);
        let exec: Vec<u64> = graph.actors().map(|(_, a)| a.execution_time()).collect();
        if exec.iter().all(|&e| e == 0) {
            return Ok(None);
        }
        let mut tokens: Vec<u64> = graph.channels().map(|(_, c)| c.initial_tokens()).collect();
        let cons: Vec<u64> = graph
            .channels()
            .map(|(_, c)| c.consumption_rate())
            .collect();
        let prod: Vec<u64> = graph.channels().map(|(_, c)| c.production_rate()).collect();

        let mut ongoing: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::new();
        let mut busy: Vec<u64> = vec![0; n];
        let mut time: u64 = 0;
        let mut ref_completions: u64 = 0;
        let mut seen: HashMap<StateKey, (u64, u64)> = HashMap::new();

        loop {
            let mut started_this_instant = 0usize;
            loop {
                let mut fired = false;
                for a in 0..n {
                    loop {
                        if !opts.auto_concurrency && busy[a] > 0 {
                            break;
                        }
                        let ready = graph
                            .incoming(ActorId(a))
                            .iter()
                            .all(|&cid| tokens[cid.0] >= cons[cid.0]);
                        if !ready {
                            break;
                        }
                        for &cid in graph.incoming(ActorId(a)) {
                            tokens[cid.0] -= cons[cid.0];
                        }
                        started_this_instant += 1;
                        if started_this_instant > opts.max_firings_per_instant {
                            return Err(SdfError::AnalysisLimit(format!(
                                "more than {} firings at cycle {time}; zero-delay cycle or \
                                 unbounded auto-concurrency",
                                opts.max_firings_per_instant
                            )));
                        }
                        fired = true;
                        if exec[a] == 0 {
                            for &cid in graph.outgoing(ActorId(a)) {
                                tokens[cid.0] += prod[cid.0];
                            }
                            if a == reference.0 {
                                ref_completions += 1;
                            }
                        } else {
                            busy[a] += 1;
                            ongoing.push(std::cmp::Reverse((time + exec[a], a)));
                            if !opts.auto_concurrency {
                                break;
                            }
                        }
                    }
                }
                if !fired {
                    break;
                }
            }

            let key = StateKey::capture(&tokens, &ongoing, time);
            match seen.entry(key) {
                Entry::Occupied(prev) => {
                    let (t0, c0) = *prev.get();
                    let period = time - t0;
                    let firings = ref_completions - c0;
                    debug_assert!(period > 0, "time advances between snapshots");
                    debug_assert!(firings.is_multiple_of(q_ref));
                    let iterations = firings / q_ref;
                    return Ok(Some(ThroughputResult {
                        iterations_per_cycle: if iterations == 0 {
                            Ratio::ZERO
                        } else {
                            Ratio::new(iterations as i128, period as i128)
                        },
                        transient_cycles: t0,
                        period_cycles: period,
                        iterations_per_period: iterations,
                        states_explored: seen.len(),
                    }));
                }
                Entry::Vacant(v) => {
                    v.insert((time, ref_completions));
                }
            }
            if seen.len() > opts.max_states {
                return Err(SdfError::AnalysisLimit(format!(
                    "state space exceeded {} states",
                    opts.max_states
                )));
            }

            let std::cmp::Reverse((t_next, _)) = match ongoing.peek() {
                Some(&e) => e,
                None => {
                    return Err(SdfError::Deadlock(format!(
                        "self-timed execution stalled at cycle {time}"
                    )))
                }
            };
            time = t_next;
            while let Some(&std::cmp::Reverse((t, a))) = ongoing.peek() {
                if t != time {
                    break;
                }
                ongoing.pop();
                busy[a] -= 1;
                for &cid in graph.outgoing(ActorId(a)) {
                    tokens[cid.0] += prod[cid.0];
                }
                if a == reference.0 {
                    ref_completions += 1;
                }
            }
        }
    }

    /// Hashable snapshot of an execution state: channel fill plus, per
    /// actor, the sorted multiset of remaining execution times.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct StateKey {
        tokens: Vec<u64>,
        remaining: Vec<(u32, u64)>,
    }

    impl StateKey {
        fn capture(
            tokens: &[u64],
            ongoing: &BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
            now: u64,
        ) -> StateKey {
            let mut remaining: Vec<(u32, u64)> = ongoing
                .iter()
                .map(|&std::cmp::Reverse((t, a))| (a as u32, t - now))
                .collect();
            remaining.sort_unstable();
            StateKey {
                tokens: tokens.to_vec(),
                remaining,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SdfGraphBuilder;
    use crate::transform::with_buffer_capacities;

    fn opts() -> AnalysisOptions {
        AnalysisOptions::default()
    }

    #[test]
    fn two_actor_cycle_throughput() {
        let mut b = SdfGraphBuilder::new("pair");
        let a = b.add_actor("A", 3);
        let c = b.add_actor("B", 7);
        b.add_channel_with_tokens("f", a, 1, c, 1, 1);
        b.add_channel("r", c, 1, a, 1);
        let g = b.build().unwrap();
        let t = throughput(&g, &opts()).unwrap();
        assert_eq!(t.iterations_per_cycle, Ratio::new(1, 10));
    }

    #[test]
    fn pipeline_throughput_limited_by_slowest() {
        let mut b = SdfGraphBuilder::new("pipe");
        let a = b.add_actor("A", 2);
        let c = b.add_actor("B", 9);
        let d = b.add_actor("C", 4);
        b.add_channel("e1", a, 1, c, 1);
        b.add_channel("e2", c, 1, d, 1);
        let g = b.build().unwrap();
        let t = throughput(&g, &opts()).unwrap();
        assert_eq!(t.iterations_per_cycle, Ratio::new(1, 9));
    }

    #[test]
    fn multirate_graph() {
        // A (rate 2, exec 4) -> B (rate 1, exec 3); q = (1, 2).
        // A: 1 iteration per 4 cycles; B: 2 firings * 3 = 6 cycles/iteration.
        let mut b = SdfGraphBuilder::new("mr");
        let a = b.add_actor("A", 4);
        let c = b.add_actor("B", 3);
        b.add_channel("e", a, 2, c, 1);
        let g = b.build().unwrap();
        let t = throughput(&g, &opts()).unwrap();
        assert_eq!(t.iterations_per_cycle, Ratio::new(1, 6));
    }

    #[test]
    fn deadlocked_graph_reported() {
        let mut b = SdfGraphBuilder::new("dead");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel("f", a, 1, c, 1);
        b.add_channel("r", c, 1, a, 1);
        let g = b.build().unwrap();
        assert!(matches!(
            throughput(&g, &opts()),
            Err(SdfError::Deadlock(_))
        ));
    }

    #[test]
    fn zero_time_actor_in_chain() {
        let mut b = SdfGraphBuilder::new("zt");
        let a = b.add_actor("A", 5);
        let z = b.add_actor("Z", 0);
        let c = b.add_actor("B", 5);
        b.add_channel("e1", a, 1, z, 1);
        b.add_channel("e2", z, 1, c, 1);
        let g = b.build().unwrap();
        let t = throughput(&g, &opts()).unwrap();
        assert_eq!(t.iterations_per_cycle, Ratio::new(1, 5));
    }

    #[test]
    fn zero_delay_cycle_detected() {
        let mut b = SdfGraphBuilder::new("zdc");
        let a = b.add_actor("A", 0);
        b.add_channel_with_tokens("s", a, 1, a, 1, 1);
        let g = b.build().unwrap();
        let r = throughput(
            &g,
            &AnalysisOptions {
                max_firings_per_instant: 1000,
                ..opts()
            },
        );
        assert!(matches!(r, Err(SdfError::AnalysisLimit(_))));
    }

    #[test]
    fn all_zero_time_graph_unbounded() {
        let mut b = SdfGraphBuilder::new("zeros");
        let a = b.add_actor("A", 0);
        let c = b.add_actor("B", 0);
        b.add_channel("e", a, 1, c, 1);
        let g = b.build().unwrap();
        assert!(matches!(
            throughput(&g, &opts()),
            Err(SdfError::AnalysisLimit(_))
        ));
    }

    #[test]
    fn initial_tokens_pipeline_parallelism() {
        // Cycle A->B->A with 2 tokens allows overlapping: throughput limited
        // by max(execA, execB) not the sum.
        let mut b = SdfGraphBuilder::new("2tok");
        let a = b.add_actor("A", 6);
        let c = b.add_actor("B", 4);
        b.add_channel_with_tokens("f", a, 1, c, 1, 0);
        b.add_channel_with_tokens("r", c, 1, a, 1, 2);
        let g = b.build().unwrap();
        let t = throughput(&g, &opts()).unwrap();
        assert_eq!(t.iterations_per_cycle, Ratio::new(1, 6));
    }

    #[test]
    fn single_self_loop_actor() {
        let mut b = SdfGraphBuilder::new("one");
        let a = b.add_actor("A", 12);
        b.add_channel_with_tokens("s", a, 1, a, 1, 1);
        let g = b.build().unwrap();
        let t = throughput(&g, &opts()).unwrap();
        assert_eq!(t.iterations_per_cycle, Ratio::new(1, 12));
        assert_eq!(t.cycles_per_iteration(), 12.0);
    }

    #[test]
    fn self_edge_tokens_bound_concurrency() {
        // Self-edge with 2 tokens allows two overlapping firings; the
        // pipeline rate doubles compared to 1 token.
        let mk = |tokens: u64| {
            let mut b = SdfGraphBuilder::new("se");
            let a = b.add_actor("A", 10);
            b.add_channel_with_tokens("s", a, 1, a, 1, tokens);
            b.build().unwrap()
        };
        let one = throughput(
            &mk(1),
            &AnalysisOptions {
                auto_concurrency: true,
                ..opts()
            },
        )
        .unwrap();
        let two = throughput(
            &mk(2),
            &AnalysisOptions {
                auto_concurrency: true,
                ..opts()
            },
        )
        .unwrap();
        assert_eq!(one.iterations_per_cycle, Ratio::new(1, 10));
        assert_eq!(two.iterations_per_cycle, Ratio::new(2, 10));
    }

    #[test]
    fn fig2_throughput() {
        // Paper Fig. 2 graph with chosen execution times.
        let mut b = SdfGraphBuilder::new("fig2");
        let a = b.add_actor("A", 10);
        let bb = b.add_actor("B", 5);
        let c = b.add_actor("C", 7);
        b.add_channel("a2b", a, 2, bb, 1);
        b.add_channel("a2c", a, 1, c, 1);
        b.add_channel("b2c", bb, 1, c, 2);
        b.add_channel_with_tokens("selfA", a, 1, a, 1, 1);
        let g = b.build().unwrap();
        let t = throughput(&g, &opts()).unwrap();
        // Bottlenecks: A every 10 cycles; B 2x5=10 cycles; C 7 cycles.
        assert_eq!(t.iterations_per_cycle, Ratio::new(1, 10));
    }

    #[test]
    fn scc_decomposition() {
        let mut b = SdfGraphBuilder::new("sccs");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        let d = b.add_actor("C", 1);
        // Cycle A<->B, then edge to C.
        b.add_channel_with_tokens("f", a, 1, c, 1, 1);
        b.add_channel("r", c, 1, a, 1);
        b.add_channel("o", c, 1, d, 1);
        let g = b.build().unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 2);
        let sizes: Vec<usize> = sccs.iter().map(|s| s.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
    }

    #[test]
    fn throughput_monotone_in_execution_time() {
        let mk = |eb: u64| {
            let mut b = SdfGraphBuilder::new("m");
            let a = b.add_actor("A", 3);
            let c = b.add_actor("B", eb);
            b.add_channel_with_tokens("f", a, 2, c, 3, 6);
            b.add_channel("r", c, 3, a, 2);
            b.build().unwrap()
        };
        let mut last = f64::INFINITY;
        for eb in [1, 2, 4, 8, 16] {
            let t = throughput(&mk(eb), &opts()).unwrap().as_f64();
            assert!(t <= last + 1e-12);
            last = t;
        }
    }

    #[test]
    fn fast_kernel_matches_reference_on_named_graphs() {
        let graphs: Vec<SdfGraph> = vec![
            {
                let mut b = SdfGraphBuilder::new("fig2");
                let a = b.add_actor("A", 10);
                let bb = b.add_actor("B", 5);
                let c = b.add_actor("C", 7);
                b.add_channel("a2b", a, 2, bb, 1);
                b.add_channel("a2c", a, 1, c, 1);
                b.add_channel("b2c", bb, 1, c, 2);
                b.add_channel_with_tokens("selfA", a, 1, a, 1, 1);
                b.build().unwrap()
            },
            {
                let mut b = SdfGraphBuilder::new("mr");
                let a = b.add_actor("A", 4);
                let c = b.add_actor("B", 3);
                b.add_channel("e", a, 2, c, 1);
                b.build().unwrap()
            },
            {
                let mut b = SdfGraphBuilder::new("2tok");
                let a = b.add_actor("A", 6);
                let c = b.add_actor("B", 4);
                b.add_channel_with_tokens("f", a, 1, c, 1, 0);
                b.add_channel_with_tokens("r", c, 1, a, 1, 2);
                b.build().unwrap()
            },
        ];
        for g in &graphs {
            for auto in [false, true] {
                let o = AnalysisOptions {
                    auto_concurrency: auto,
                    ..opts()
                };
                match (throughput(g, &o), reference::throughput(g, &o)) {
                    (Ok(fast), Ok(slow)) => assert_eq!(fast, slow, "graph {}", g.name()),
                    (Err(_), Err(_)) => {}
                    (f, s) => panic!("fast/reference disagree on {}: {f:?} vs {s:?}", g.name()),
                }
            }
        }
    }

    #[test]
    fn bounded_fast_path_matches_materialized_graph() {
        let mut b = SdfGraphBuilder::new("pc");
        let p = b.add_actor("producer", 7);
        let c = b.add_actor("consumer", 5);
        b.add_channel("data", p, 2, c, 3);
        let g = b.build().unwrap();
        for cap in 4..10u64 {
            let fast = throughput_bounded(&g, &[cap], &opts()).unwrap();
            let slow = throughput(&with_buffer_capacities(&g, &[cap]).unwrap(), &opts()).unwrap();
            assert_eq!(fast, slow, "capacity {cap}");
        }
    }

    #[test]
    fn bounded_fast_path_validates_capacities() {
        let mut b = SdfGraphBuilder::new("g");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel_with_tokens("e", a, 1, c, 1, 3);
        let g = b.build().unwrap();
        assert!(matches!(
            throughput_bounded(&g, &[2], &opts()),
            Err(SdfError::InvalidGraph(_))
        ));
        assert!(matches!(
            throughput_bounded(&g, &[3, 3], &opts()),
            Err(SdfError::InvalidGraph(_))
        ));
    }

    #[test]
    fn bounded_fast_path_reports_deadlock() {
        // Capacity 1 on a 2->3-rate channel can never hold the 3 tokens the
        // consumer needs, but validation only requires cap >= initial
        // tokens, so the deadlock surfaces in the execution.
        let mut b = SdfGraphBuilder::new("tight");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel("e", a, 2, c, 3);
        let g = b.build().unwrap();
        assert!(matches!(
            throughput_bounded(&g, &[1], &opts()),
            Err(SdfError::Deadlock(_))
        ));
    }
}
