//! Graph transformations used by the analysis and mapping flows.
//!
//! All transformations are pure: they build a new graph, leaving the input
//! untouched. Three transformations recur throughout the paper's flow:
//!
//! * **Self-edges** model the exclusion of auto-concurrency (each actor is a
//!   single task; paper §3 also uses them for actor state as in Fig. 2).
//! * **Reverse channels** model bounded buffer capacities: a channel with
//!   capacity `β` is paired with a reverse channel holding `β - d` initial
//!   tokens, so the producer blocks when the buffer is full (paper §3,
//!   "modeling restrictions like limited buffer sizes").
//! * **Static-order chains** encode the per-tile firing order chosen by the
//!   scheduler, so the analysed model and the generated implementation agree
//!   (paper §5.1/§5.2).

use crate::error::SdfError;
use crate::graph::{ActorId, ChannelId, SdfGraph, SdfGraphBuilder};

/// Returns a copy of `graph` with a single-token self-edge added to every
/// actor that lacks one, excluding auto-concurrency.
///
/// # Examples
///
/// ```
/// use mamps_sdf::graph::SdfGraphBuilder;
/// use mamps_sdf::transform::add_missing_self_edges;
///
/// let mut b = SdfGraphBuilder::new("g");
/// let a = b.add_actor("A", 1);
/// let c = b.add_actor("B", 1);
/// b.add_channel("e", a, 1, c, 1);
/// let g = b.build().unwrap();
/// let g2 = add_missing_self_edges(&g);
/// assert_eq!(g2.channel_count(), 3);
/// ```
pub fn add_missing_self_edges(graph: &SdfGraph) -> SdfGraph {
    let mut b = copy_into_builder(graph, format!("{}:noac", graph.name()));
    for (aid, actor) in graph.actors() {
        let has_self = graph
            .outgoing(aid)
            .iter()
            .any(|&c| graph.channel(c).is_self_edge());
        if !has_self {
            b.add_channel_with_tokens(format!("__self_{}", actor.name()), aid, 1, aid, 1, 1);
        }
    }
    b.build().expect("adding self-edges preserves validity")
}

/// A buffer capacity assignment: `capacities[c]` bounds channel `c`.
pub type BufferCapacities = Vec<u64>;

/// Checks that `capacities` is a valid buffer assignment for `graph`: one
/// entry per channel, each at least the channel's initial token count.
/// Shared by [`with_buffer_capacities`] and the materialization-free bounded
/// analysis ([`crate::state_space::throughput_bounded`]).
///
/// # Errors
///
/// Returns [`SdfError::InvalidGraph`] naming the first violation.
pub fn validate_buffer_capacities(graph: &SdfGraph, capacities: &[u64]) -> Result<(), SdfError> {
    if capacities.len() != graph.channel_count() {
        return Err(SdfError::InvalidGraph(format!(
            "expected {} capacities, got {}",
            graph.channel_count(),
            capacities.len()
        )));
    }
    for (cid, ch) in graph.channels() {
        if ch.is_self_edge() {
            continue;
        }
        let cap = capacities[cid.0];
        if cap < ch.initial_tokens() {
            return Err(SdfError::InvalidGraph(format!(
                "capacity {cap} of channel `{}` is below its {} initial tokens",
                ch.name(),
                ch.initial_tokens()
            )));
        }
    }
    Ok(())
}

/// Returns a copy of `graph` where every channel `c` is back-pressured by a
/// reverse channel modelling a buffer of `capacities[c]` tokens.
///
/// Self-edges are skipped: their capacity is fixed by their own tokens.
///
/// # Errors
///
/// Returns [`SdfError::InvalidGraph`] if `capacities.len()` does not match
/// the channel count, or if some capacity is smaller than the channel's
/// initial tokens (the buffer could not even hold the initial state).
pub fn with_buffer_capacities(graph: &SdfGraph, capacities: &[u64]) -> Result<SdfGraph, SdfError> {
    validate_buffer_capacities(graph, capacities)?;
    let mut b = copy_into_builder(graph, format!("{}:bounded", graph.name()));
    for (cid, ch) in graph.channels() {
        if ch.is_self_edge() {
            continue;
        }
        let cap = capacities[cid.0];
        b.add_channel_with_tokens(
            format!("__cap_{}", ch.name()),
            ch.dst(),
            ch.consumption_rate(),
            ch.src(),
            ch.production_rate(),
            cap - ch.initial_tokens(),
        );
    }
    b.build()
}

/// Returns a copy of `graph` with static-order constraint actors/channels
/// forcing each listed batch sequence to execute round-robin.
///
/// A schedule is a list of *batches* `(actor, reps)`: the actor fires `reps`
/// times, then control passes to the next batch; after the last batch the
/// schedule wraps around. The encoding inserts a zero-time *gate* actor
/// after each batch: `a --(1/reps_a)--> gate --(reps_next/1)--> next`, with
/// the wrap-around gate preloaded so the first batch can start. Gates make
/// the batch semantics exact: the next batch cannot start before the whole
/// previous batch completed, matching a sequential processor running a
/// static-order lookup table (paper §6.3).
///
/// Each actor may appear at most once per schedule (the scheduler emits
/// batched orders); the repetition counts of all batches in one schedule
/// must be proportional to the actors' repetition-vector entries for the
/// result to stay consistent.
///
/// # Errors
///
/// Returns [`SdfError::InvalidGraph`] if a schedule references an actor out
/// of range, lists an actor twice, or has a zero repetition count.
pub fn with_static_orders(
    graph: &SdfGraph,
    schedules: &[Vec<(ActorId, u64)>],
) -> Result<SdfGraph, SdfError> {
    let mut b = copy_into_builder(graph, format!("{}:ordered", graph.name()));
    for (tile, sched) in schedules.iter().enumerate() {
        if sched.len() <= 1 {
            continue; // a single actor needs no ordering
        }
        let mut seen = std::collections::HashSet::new();
        for &(a, reps) in sched {
            if a.0 >= graph.actor_count() {
                return Err(SdfError::InvalidGraph(format!(
                    "schedule {tile} references unknown actor {a}"
                )));
            }
            if reps == 0 {
                return Err(SdfError::InvalidGraph(format!(
                    "schedule {tile} has a zero repetition count for {a}"
                )));
            }
            if !seen.insert(a) {
                return Err(SdfError::InvalidGraph(format!(
                    "schedule {tile} lists actor {a} twice; emit batched orders"
                )));
            }
        }
        for (idx, &(a, reps_a)) in sched.iter().enumerate() {
            let (next, reps_next) = sched[(idx + 1) % sched.len()];
            let wrap = idx + 1 == sched.len();
            let gate = b.add_actor(format!("__sog{tile}_{idx}"), 0);
            // Gate fires once per completed batch of `a`...
            b.add_channel_with_tokens(format!("__soa{tile}_{idx}"), a, 1, gate, reps_a, 0);
            // ...and releases the whole next batch. The wrap-around edge is
            // preloaded so the first batch can start immediately.
            b.add_channel_with_tokens(
                format!("__sob{tile}_{idx}"),
                gate,
                reps_next,
                next,
                1,
                if wrap { reps_next } else { 0 },
            );
        }
    }
    b.build()
}

fn copy_into_builder(graph: &SdfGraph, name: String) -> SdfGraphBuilder {
    let mut b = SdfGraphBuilder::new(name);
    for (_, a) in graph.actors() {
        b.add_actor(a.name(), a.execution_time());
    }
    for (_, c) in graph.channels() {
        b.add_channel_full(
            c.name(),
            c.src(),
            c.production_rate(),
            c.dst(),
            c.consumption_rate(),
            c.initial_tokens(),
            c.token_size(),
        );
    }
    b
}

/// Identifies channels that are analysis artefacts (self-edges added by
/// [`add_missing_self_edges`], capacity channels, static-order channels) by
/// the naming convention `__`-prefix.
pub fn is_artifact_channel(graph: &SdfGraph, id: ChannelId) -> bool {
    graph.channel(id).name().starts_with("__")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state_space::{throughput, AnalysisOptions};

    fn two_actor_graph() -> SdfGraph {
        let mut b = SdfGraphBuilder::new("g");
        let a = b.add_actor("A", 2);
        let c = b.add_actor("B", 3);
        b.add_channel("e", a, 1, c, 1);
        b.build().unwrap()
    }

    #[test]
    fn self_edges_added_once() {
        let g = two_actor_graph();
        let g1 = add_missing_self_edges(&g);
        assert_eq!(g1.channel_count(), 3);
        let g2 = add_missing_self_edges(&g1);
        assert_eq!(g2.channel_count(), 3);
    }

    #[test]
    fn buffer_capacity_backpressure() {
        let g = two_actor_graph();
        // Capacity 1 on the single channel.
        let bounded = with_buffer_capacities(&g, &[1]).unwrap();
        assert_eq!(bounded.channel_count(), 2);
        let t = throughput(&bounded, &AnalysisOptions::default()).unwrap();
        // With capacity 1: A fires (2 cycles), B fires (3), A can refire
        // only after B consumed: steady state period 3 — wait: A writes at
        // t=2, B runs [2,5), A refires during B? The reverse channel token
        // returns when B *finishes*. Period = 3 only if A's 2 cycles hide
        // inside B's 3. A needs the capacity token back at B's completion.
        // Steady state: B completes every 5 cycles? Let the analysis speak;
        // assert the bound is between the slowest actor and the sum.
        let v = t.as_f64();
        assert!(v <= 1.0 / 3.0 + 1e-12);
        assert!(v >= 1.0 / 5.0 - 1e-12);
    }

    #[test]
    fn larger_buffers_never_hurt() {
        let g = two_actor_graph();
        let mut last = 0.0;
        for cap in 1..=4 {
            let bounded = with_buffer_capacities(&g, &[cap]).unwrap();
            let t = throughput(&bounded, &AnalysisOptions::default())
                .unwrap()
                .as_f64();
            assert!(t >= last - 1e-12, "throughput decreased with larger buffer");
            last = t;
        }
        // Saturation: with enough capacity, B (3 cycles) is the bottleneck.
        assert!((last - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_below_initial_tokens_rejected() {
        let mut b = SdfGraphBuilder::new("g");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel_with_tokens("e", a, 1, c, 1, 3);
        let g = b.build().unwrap();
        assert!(with_buffer_capacities(&g, &[2]).is_err());
    }

    #[test]
    fn capacity_count_mismatch_rejected() {
        let g = two_actor_graph();
        assert!(with_buffer_capacities(&g, &[1, 1]).is_err());
    }

    #[test]
    fn self_edges_skipped_by_capacity() {
        let mut b = SdfGraphBuilder::new("g");
        let a = b.add_actor("A", 1);
        b.add_channel_with_tokens("s", a, 1, a, 1, 1);
        let g = b.build().unwrap();
        let bounded = with_buffer_capacities(&g, &[5]).unwrap();
        assert_eq!(bounded.channel_count(), 1);
    }

    #[test]
    fn static_order_serializes_tile() {
        // A and B on one tile, same repetition count: order A then B.
        let g = two_actor_graph();
        let a = g.actor_by_name("A").unwrap();
        let c = g.actor_by_name("B").unwrap();
        let ordered = with_static_orders(&g, &[vec![(a, 1), (c, 1)]]).unwrap();
        // Original channel + 2 gate actors with 2 channels each.
        assert_eq!(ordered.actor_count(), 4);
        assert_eq!(ordered.channel_count(), 5);
        let t = throughput(&ordered, &AnalysisOptions::default()).unwrap();
        // Sequential execution on one processor: 2 + 3 cycles per iteration.
        assert_eq!(t.cycles_per_iteration(), 5.0);
    }

    #[test]
    fn static_order_duplicate_actor_rejected() {
        let g = two_actor_graph();
        let a = g.actor_by_name("A").unwrap();
        assert!(with_static_orders(&g, &[vec![(a, 1), (a, 1)]]).is_err());
    }

    #[test]
    fn artifact_channels_detected() {
        let g = add_missing_self_edges(&two_actor_graph());
        let artifacts: Vec<bool> = g
            .channels()
            .map(|(id, _)| is_artifact_channel(&g, id))
            .collect();
        assert_eq!(artifacts.iter().filter(|&&x| x).count(), 2);
    }
}
