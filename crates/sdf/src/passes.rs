//! Named, fingerprint-keyed pipeline passes with memoization.
//!
//! The mapping flow is a fixed sequence of stages (bind → wire-alloc →
//! schedule → buffer-size → verify). This module turns each stage into a
//! *pass*: a named unit whose inputs are reduced to a stable 64-bit
//! fingerprint (the same pinned FNV-1a walk as [`serde::stable_hash`],
//! which also backs [`crate::cache::GraphFingerprint`]) and whose output
//! is a serde [`Value`] tree. A [`PassRunner`] drives passes, records
//! per-pass wall time and cache hits, and — when a [`PassCache`] is
//! attached — skips any pass whose input fingerprint was seen before,
//! replaying the memoized output instead.
//!
//! That is what makes re-mapping *incremental*: after a one-actor WCET
//! edit, only the passes whose fingerprints actually changed re-execute;
//! the unchanged prefix (and any unchanged sibling application in a
//! use-case) replays from the cache. Because a replayed output is the
//! deserialized form of the exact value the original run produced, cold,
//! warm and incremental runs print byte-identical reports by
//! construction.
//!
//! Three deliberate design points:
//!
//! * **Lazy fingerprints.** `PassRunner::run` takes the input fingerprint
//!   as a closure and only invokes it when a cache is attached, so
//!   cache-less runs (the default) pay nothing for serialization.
//! * **Errors are memoized too.** A pass returns `Result<T, E>` and both
//!   arms are cached: an infeasible binding stays infeasible on replay.
//! * **Stale entries are advisory.** A cached value that no longer
//!   decodes (schema drift in an on-disk cache from an older build) is
//!   treated as a miss and recomputed — the cache can never wedge a run.
//!
//! The sharded-map + atomic-counter structure and the sorted
//! export/import contract mirror [`crate::cache::GlobalAnalysisCache`];
//! `mamps_core::dse::cache` persists [`PassEntry`] rows as JSONL next to
//! the analysis-cache files.

use std::collections::hash_map::Entry;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{intern, stable_hash, Deserialize, Serialize, Value};

use crate::cache::{CacheStats, FxBuild, FxHashMap};

/// Number of independently locked shards, matching
/// [`crate::cache::GlobalAnalysisCache`].
const SHARD_COUNT: usize = 16;

/// Reduces the parts of a pass input to one stable 64-bit fingerprint.
///
/// The parts are hashed as a [`Value::Seq`] through [`stable_hash`]'s
/// tagged, length-prefixed walk, so `["a", "bc"]` and `["ab", "c"]`
/// cannot collide structurally and the result is identical across
/// processes and platforms (it is what the on-disk pass cache is keyed
/// by).
pub fn fingerprint(parts: Vec<Value>) -> u64 {
    stable_hash(&Value::Seq(parts))
}

/// Cache key: which pass, over which input fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    pass: &'static str,
    input: u64,
}

/// One serializable pass-cache entry, the unit of the on-disk JSONL
/// layer (`pass-cache-*.jsonl` under `--cache-dir`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PassEntry {
    /// Pass name (e.g. `"bind"`, `"buffer-size"`).
    pub pass: String,
    /// [`fingerprint`] of the pass inputs.
    pub input: u64,
    /// The memoized pass output, opaque to the cache: the serialized
    /// `Result<T, E>` of the pass body.
    pub output: Value,
}

/// A global, thread-safe memo table from `(pass, input fingerprint)` to
/// serialized pass output. Shared as an `Arc` through a [`PassRunner`];
/// all methods take `&self` and shards are never locked while computing.
pub struct PassCache {
    shards: [Mutex<FxHashMap<Key, Value>>; SHARD_COUNT],
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl fmt::Debug for PassCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for PassCache {
    fn default() -> Self {
        PassCache::new()
    }
}

impl PassCache {
    /// An empty cache.
    pub fn new() -> PassCache {
        PassCache {
            shards: std::array::from_fn(|_| Mutex::new(FxHashMap::default())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &Key) -> &Mutex<FxHashMap<Key, Value>> {
        use std::hash::BuildHasher;
        let h = FxBuild::default().hash_one(key);
        &self.shards[(h as usize) % SHARD_COUNT]
    }

    /// The memoized output for `pass` over `input`, if any. Counts a hit
    /// or a miss.
    pub fn lookup(&self, pass: &'static str, input: u64) -> Option<Value> {
        let key = Key { pass, input };
        let r = self
            .shard(&key)
            .lock()
            .expect("pass-cache shard poisoned")
            .get(&key)
            .cloned();
        match r {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        r
    }

    /// Memoizes `output` for `pass` over `input`. Passes are
    /// deterministic, so a racing duplicate insert is benign.
    pub fn insert(&self, pass: &'static str, input: u64, output: Value) {
        let key = Key { pass, input };
        self.shard(&key)
            .lock()
            .expect("pass-cache shard poisoned")
            .insert(key, output);
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("pass-cache shard poisoned").len())
            .sum()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every entry as a serializable [`PassEntry`], deterministically
    /// sorted by (pass, input) so equal caches export byte-identical
    /// JSONL regardless of insertion or shard order.
    pub fn export(&self) -> Vec<PassEntry> {
        let mut entries: Vec<PassEntry> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            for (k, v) in shard.lock().expect("pass-cache shard poisoned").iter() {
                entries.push(PassEntry {
                    pass: k.pass.to_string(),
                    input: k.input,
                    output: v.clone(),
                });
            }
        }
        entries.sort_by(|a, b| (&a.pass, a.input).cmp(&(&b.pass, b.input)));
        entries
    }

    /// Loads entries (e.g. parsed from an on-disk cache file) into the
    /// cache, returning how many were new. Existing entries win; imports
    /// touch neither the hit/miss nor the insert counters.
    pub fn import<I: IntoIterator<Item = PassEntry>>(&self, entries: I) -> usize {
        let mut added = 0;
        for e in entries {
            let key = Key {
                pass: intern(&e.pass),
                input: e.input,
            };
            let mut shard = self.shard(&key).lock().expect("pass-cache shard poisoned");
            if let Entry::Vacant(slot) = shard.entry(key) {
                slot.insert(e.output);
                added += 1;
            }
        }
        added
    }
}

/// Per-pass counters: executions, cache replays, and total wall time
/// (which covers both — a replayed pass still costs its decode time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PassStat {
    /// Pass name.
    pub name: &'static str,
    /// Times the pass body actually executed.
    pub runs: u64,
    /// Times the output was replayed from the cache instead.
    pub hits: u64,
    /// Total wall time across runs and hits, in nanoseconds.
    pub nanos: u64,
}

/// A snapshot of every pass a [`PassRunner`] has driven, in
/// first-execution order. `Display` renders the `--stats` table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PassReport(pub Vec<PassStat>);

impl PassReport {
    /// Total wall time across all passes, in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.0.iter().map(|p| p.nanos).sum()
    }

    /// The stat row for `name`, if that pass ever ran.
    pub fn get(&self, name: &str) -> Option<&PassStat> {
        self.0.iter().find(|p| p.name == name)
    }
}

impl fmt::Display for PassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .0
            .iter()
            .map(|p| p.name.len())
            .chain([4])
            .max()
            .unwrap_or(4);
        writeln!(
            f,
            "{:<width$}  {:>6}  {:>6}  {:>12}",
            "pass", "runs", "hits", "wall"
        )?;
        for p in &self.0 {
            writeln!(
                f,
                "{:<width$}  {:>6}  {:>6}  {:>10.3}ms",
                p.name,
                p.runs,
                p.hits,
                p.nanos as f64 / 1e6,
            )?;
        }
        write!(
            f,
            "{:<width$}  {:>6}  {:>6}  {:>10.3}ms",
            "total",
            self.0.iter().map(|p| p.runs).sum::<u64>(),
            self.0.iter().map(|p| p.hits).sum::<u64>(),
            self.total_nanos() as f64 / 1e6,
        )
    }
}

/// Drives named passes: times every invocation, and — when constructed
/// [`with_cache`](PassRunner::with_cache) — memoizes outputs by input
/// fingerprint so unchanged passes replay instead of re-executing.
///
/// Thread-safe; shared as an `Arc` through `MapOptions`/`FlowOptions`
/// the same way the analysis cache is.
#[derive(Debug, Default)]
pub struct PassRunner {
    cache: Option<std::sync::Arc<PassCache>>,
    stats: Mutex<Vec<PassStat>>,
}

impl PassRunner {
    /// A runner that times passes but never caches (the cold path; input
    /// fingerprints are never even computed).
    pub fn new() -> PassRunner {
        PassRunner::default()
    }

    /// A runner backed by `cache`: pass outputs are memoized and
    /// replayed across invocations (and across processes, once the cache
    /// is persisted).
    pub fn with_cache(cache: std::sync::Arc<PassCache>) -> PassRunner {
        PassRunner {
            cache: Some(cache),
            stats: Mutex::new(Vec::new()),
        }
    }

    /// The attached pass cache, if any.
    pub fn cache(&self) -> Option<&std::sync::Arc<PassCache>> {
        self.cache.as_ref()
    }

    fn record(&self, name: &'static str, hit: bool, nanos: u64) {
        let mut stats = self.stats.lock().expect("pass stats poisoned");
        let slot = match stats.iter_mut().find(|p| p.name == name) {
            Some(s) => s,
            None => {
                stats.push(PassStat {
                    name,
                    ..PassStat::default()
                });
                stats.last_mut().expect("just pushed")
            }
        };
        if hit {
            slot.hits += 1;
        } else {
            slot.runs += 1;
        }
        slot.nanos += nanos;
    }

    /// Snapshot of every pass driven so far, in first-execution order.
    pub fn report(&self) -> PassReport {
        PassReport(self.stats.lock().expect("pass stats poisoned").clone())
    }

    /// Runs (or replays) the pass `name`.
    ///
    /// `input` reduces the pass inputs to a stable fingerprint; it is
    /// only invoked when a cache is attached. `f` is the pass body; both
    /// its `Ok` and `Err` outcomes are memoized. A cached value that
    /// fails to decode (stale on-disk schema) falls back to `f`.
    pub fn run<T, E>(
        &self,
        name: &'static str,
        input: impl FnOnce() -> u64,
        f: impl FnOnce() -> Result<T, E>,
    ) -> Result<T, E>
    where
        T: Serialize + for<'de> Deserialize<'de>,
        E: Serialize + for<'de> Deserialize<'de>,
    {
        let start = Instant::now();
        match &self.cache {
            None => {
                let out = f();
                self.record(name, false, start.elapsed().as_nanos() as u64);
                out
            }
            Some(cache) => {
                let fp = input();
                if let Some(v) = cache.lookup(name, fp) {
                    if let Ok(out) = Result::<T, E>::from_value(&v) {
                        self.record(name, true, start.elapsed().as_nanos() as u64);
                        return out;
                    }
                }
                let out = f();
                cache.insert(name, fp, out.to_value());
                self.record(name, false, start.elapsed().as_nanos() as u64);
                out
            }
        }
    }

    /// Runs the pass `name` unconditionally, recording only wall time.
    /// For steps whose output must never be replayed (code generation
    /// into a project directory, simulator measurements).
    pub fn time<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(name, false, start.elapsed().as_nanos() as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn fp(n: u64) -> impl FnOnce() -> u64 {
        move || n
    }

    #[test]
    fn cacheless_runner_never_fingerprints() {
        let runner = PassRunner::new();
        let out: Result<u64, String> = runner.run("p", || unreachable!("lazy"), || Ok(7));
        assert_eq!(out, Ok(7));
        let report = runner.report();
        assert_eq!(report.get("p").unwrap().runs, 1);
        assert_eq!(report.get("p").unwrap().hits, 0);
    }

    #[test]
    fn cached_runner_replays_both_ok_and_err() {
        let cache = Arc::new(PassCache::new());
        let runner = PassRunner::with_cache(cache.clone());

        let a: Result<Vec<u64>, String> = runner.run("p", fp(1), || Ok(vec![1, 2, 3]));
        let b: Result<Vec<u64>, String> = runner.run("p", fp(1), || unreachable!("must replay"));
        assert_eq!(a, b);

        let e1: Result<Vec<u64>, String> = runner.run("p", fp(2), || Err("boom".into()));
        let e2: Result<Vec<u64>, String> =
            runner.run("p", fp(2), || unreachable!("errors replay too"));
        assert_eq!(e1, e2);
        assert_eq!(e2, Err("boom".to_string()));

        let report = runner.report();
        let p = report.get("p").unwrap();
        assert_eq!((p.runs, p.hits), (2, 2));
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn undecodable_entry_is_a_miss_not_an_error() {
        let cache = Arc::new(PassCache::new());
        // A foreign entry of the wrong shape under the key we will ask for.
        cache.insert("p", 9, Value::Str("not a Result".into()));
        let runner = PassRunner::with_cache(cache);
        let out: Result<u64, String> = runner.run("p", fp(9), || Ok(42));
        assert_eq!(out, Ok(42));
        // The recompute overwrote the stale entry; now it replays.
        let again: Result<u64, String> = runner.run("p", fp(9), || unreachable!());
        assert_eq!(again, Ok(42));
    }

    #[test]
    fn export_import_round_trips_and_is_deterministic() {
        let cache = PassCache::new();
        cache.insert("b", 2, Value::Int(2));
        cache.insert("a", 1, Value::Int(1));
        cache.insert("a", 3, Value::Int(3));
        let exported = cache.export();
        assert_eq!(
            exported
                .iter()
                .map(|e| (e.pass.as_str(), e.input))
                .collect::<Vec<_>>(),
            vec![("a", 1), ("a", 3), ("b", 2)]
        );

        let fresh = PassCache::new();
        assert_eq!(fresh.import(exported.clone()), 3);
        assert_eq!(fresh.import(exported.clone()), 0, "duplicates are no-ops");
        assert_eq!(fresh.export(), exported);

        // Entries survive a JSON round-trip byte-for-byte.
        for e in &exported {
            let mut line = String::new();
            serde::json::emit(&e.to_value(), &mut line);
            let back: PassEntry = serde::json::from_str(&line).unwrap();
            assert_eq!(&back, e);
        }
    }

    #[test]
    fn report_renders_a_table_with_total() {
        let runner = PassRunner::new();
        let _: Result<u64, String> = runner.run("bind", fp(0), || Ok(1));
        runner.time("boot-sim", || ());
        let text = runner.report().to_string();
        assert!(text.starts_with("pass"), "header row: {text}");
        assert!(text.contains("bind"));
        assert!(text.contains("boot-sim"));
        assert!(text.lines().last().unwrap().starts_with("total"));
    }
}
