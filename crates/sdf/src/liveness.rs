//! Deadlock-freedom (liveness) analysis.
//!
//! A consistent SDF graph is *live* (deadlock-free) iff one complete
//! iteration can execute from the initial token distribution. This follows
//! Lee & Messerschmitt's classic result: if one iteration completes, the
//! token distribution returns to the initial one, so execution can repeat
//! forever. The check below performs an abstract (untimed) execution firing
//! ready actors until every actor reached its repetition count or no actor
//! can fire.

use crate::error::SdfError;
use crate::graph::{ActorId, SdfGraph};
use crate::repetition::{repetition_vector, RepetitionVector};

/// Result of a liveness check: the firing order of a complete iteration.
///
/// The order is a valid single-processor static-order schedule of one graph
/// iteration (every actor appears exactly `q[a]` times) and is reused by the
/// mapping crate as a seed schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationOrder {
    firings: Vec<ActorId>,
}

impl IterationOrder {
    /// The firing sequence of one iteration.
    pub fn firings(&self) -> &[ActorId] {
        &self.firings
    }
}

/// Checks that `graph` can complete one iteration from its initial tokens.
///
/// Returns the witness firing order on success.
///
/// # Errors
///
/// * Propagates consistency errors from [`repetition_vector`].
/// * [`SdfError::Deadlock`] naming the actors that still have pending
///   firings when execution stalls.
///
/// # Examples
///
/// ```
/// use mamps_sdf::graph::SdfGraphBuilder;
/// use mamps_sdf::liveness::check_liveness;
///
/// // Two-actor cycle with one initial token is live...
/// let mut b = SdfGraphBuilder::new("live");
/// let a = b.add_actor("A", 1);
/// let c = b.add_actor("B", 1);
/// b.add_channel_with_tokens("f", a, 1, c, 1, 1);
/// b.add_channel("r", c, 1, a, 1);
/// let g = b.build().unwrap();
/// assert!(check_liveness(&g).is_ok());
/// ```
pub fn check_liveness(graph: &SdfGraph) -> Result<IterationOrder, SdfError> {
    let q = repetition_vector(graph)?;
    simulate_iteration(graph, &q)
}

/// Abstractly executes one iteration, returning the firing order.
pub(crate) fn simulate_iteration(
    graph: &SdfGraph,
    q: &RepetitionVector,
) -> Result<IterationOrder, SdfError> {
    let n = graph.actor_count();
    let mut tokens: Vec<u64> = graph.channels().map(|(_, c)| c.initial_tokens()).collect();
    let mut remaining: Vec<u64> = (0..n).map(|i| q.of(ActorId(i))).collect();
    let mut firings = Vec::with_capacity(q.total_firings() as usize);

    let is_ready = |tokens: &[u64], remaining: &[u64], a: usize| -> bool {
        if remaining[a] == 0 {
            return false;
        }
        graph.incoming(ActorId(a)).iter().all(|&cid| {
            let ch = graph.channel(cid);
            tokens[cid.0] >= ch.consumption_rate()
        })
    };

    loop {
        let mut fired_any = false;
        for a in 0..n {
            // Fire each ready actor once per sweep; round-robin keeps the
            // witness order fair and deterministic.
            if is_ready(&tokens, &remaining, a) {
                for &cid in graph.incoming(ActorId(a)) {
                    tokens[cid.0] -= graph.channel(cid).consumption_rate();
                }
                for &cid in graph.outgoing(ActorId(a)) {
                    tokens[cid.0] += graph.channel(cid).production_rate();
                }
                remaining[a] -= 1;
                firings.push(ActorId(a));
                fired_any = true;
            }
        }
        if remaining.iter().all(|&r| r == 0) {
            // One full iteration must restore the initial distribution.
            debug_assert!(
                graph
                    .channels()
                    .all(|(cid, c)| tokens[cid.0] == c.initial_tokens()),
                "iteration completed but token counts changed — graph inconsistent?"
            );
            return Ok(IterationOrder { firings });
        }
        if !fired_any {
            let stuck: Vec<&str> = (0..n)
                .filter(|&a| remaining[a] > 0)
                .map(|a| graph.actor(ActorId(a)).name())
                .collect();
            return Err(SdfError::Deadlock(format!(
                "no actor can fire; pending: {}",
                stuck.join(", ")
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SdfGraphBuilder;

    #[test]
    fn cycle_without_tokens_deadlocks() {
        let mut b = SdfGraphBuilder::new("dead");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel("f", a, 1, c, 1);
        b.add_channel("r", c, 1, a, 1);
        let g = b.build().unwrap();
        match check_liveness(&g) {
            Err(SdfError::Deadlock(msg)) => {
                assert!(msg.contains('A') && msg.contains('B'));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn cycle_with_token_is_live() {
        let mut b = SdfGraphBuilder::new("live");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel_with_tokens("f", a, 1, c, 1, 1);
        b.add_channel("r", c, 1, a, 1);
        let g = b.build().unwrap();
        let order = check_liveness(&g).unwrap();
        assert_eq!(order.firings().len(), 2);
    }

    #[test]
    fn fig2_iteration_order() {
        let mut b = SdfGraphBuilder::new("fig2");
        let a = b.add_actor("A", 10);
        let bb = b.add_actor("B", 5);
        let c = b.add_actor("C", 7);
        b.add_channel("a2b", a, 2, bb, 1);
        b.add_channel("a2c", a, 1, c, 1);
        b.add_channel("b2c", bb, 1, c, 2);
        b.add_channel_with_tokens("selfA", a, 1, a, 1, 1);
        let g = b.build().unwrap();
        let order = check_liveness(&g).unwrap();
        // One iteration: A once, B twice, C once = 4 firings, A first.
        assert_eq!(order.firings().len(), 4);
        assert_eq!(order.firings()[0], a);
        let count = |x| order.firings().iter().filter(|&&f| f == x).count();
        assert_eq!(count(a), 1);
        assert_eq!(count(bb), 2);
        assert_eq!(count(c), 1);
    }

    #[test]
    fn insufficient_initial_tokens_deadlock() {
        // C needs 2 tokens per firing but the cycle only ever holds 1.
        let mut b = SdfGraphBuilder::new("starve");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("C", 1);
        b.add_channel_with_tokens("f", a, 1, c, 2, 1);
        b.add_channel("r", c, 2, a, 1);
        let g = b.build().unwrap();
        assert!(matches!(check_liveness(&g), Err(SdfError::Deadlock(_))));
    }

    #[test]
    fn acyclic_graph_always_live() {
        let mut b = SdfGraphBuilder::new("acyc");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        let d = b.add_actor("C", 1);
        b.add_channel("e1", a, 3, c, 2);
        b.add_channel("e2", c, 1, d, 3);
        let g = b.build().unwrap();
        let order = check_liveness(&g).unwrap();
        // q = (2, 3, 1): 6 firings total.
        assert_eq!(order.firings().len(), 6);
    }
}
