//! Exact rational arithmetic used by the repetition-vector computation and
//! the max-cycle-ratio analysis.
//!
//! The standard library has no rational type and external numeric crates are
//! out of scope for this project, so a small, always-normalized `i128`
//! implementation lives here. Values occurring in SDF analysis (port rates,
//! token counts, execution times) are small, so `i128` gives ample headroom.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) == 1`.
///
/// # Examples
///
/// ```
/// use mamps_sdf::ratio::Ratio;
///
/// let a = Ratio::new(2, 4);
/// assert_eq!(a, Ratio::new(1, 2));
/// assert_eq!(a + Ratio::new(1, 3), Ratio::new(5, 6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i128,
    den: i128,
}

// Manual impls instead of derives: deserialization must re-normalize
// through `Ratio::new` so the `den > 0`, `gcd(num, den) == 1` invariant
// holds for any input, not just values this code emitted.
impl serde::Serialize for Ratio {
    fn to_value(&self) -> serde::Value {
        serde::Value::Seq(vec![
            serde::Value::Int(self.num),
            serde::Value::Int(self.den),
        ])
    }
}

impl<'de> serde::Deserialize<'de> for Ratio {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let seq = value
            .as_seq()
            .ok_or_else(|| serde::Error::expected("[num, den] array", "Ratio"))?;
        let [num, den] = seq else {
            return Err(serde::Error::expected("a 2-element array", "Ratio"));
        };
        let num = num
            .as_int()
            .ok_or_else(|| serde::Error::expected("integer numerator", "Ratio"))?;
        let den = den
            .as_int()
            .ok_or_else(|| serde::Error::expected("integer denominator", "Ratio"))?;
        if den == 0 {
            return Err(serde::Error::custom("Ratio denominator must be nonzero"));
        }
        Ok(Ratio::new(num, den))
    }
}

/// Greatest common divisor of two non-negative integers.
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple of two positive integers.
///
/// # Panics
///
/// Panics if the result overflows `u64`.
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

fn gcd_i128(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// The rational zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates a new ratio, normalizing sign and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Ratio {
        assert!(den != 0, "ratio denominator must be non-zero");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd_i128(num, den).max(1);
        Ratio {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Creates a ratio from an integer.
    pub fn from_int(v: i128) -> Ratio {
        Ratio { num: v, den: 1 }
    }

    /// Numerator (after normalization; carries the sign).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Returns the value as an `f64` (possibly losing precision).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Returns the multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Ratio {
        assert!(self.num != 0, "cannot invert zero");
        Ratio::new(self.den, self.num)
    }

    /// True if the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::ZERO
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Ratio {
    type Output = Ratio;
    fn div(self, rhs: Ratio) -> Ratio {
        assert!(rhs.num != 0, "division by zero ratio");
        Ratio::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, -4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(2, -4), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(0, 5), Ratio::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Ratio::new(1, 2);
        let b = Ratio::new(1, 3);
        assert_eq!(a + b, Ratio::new(5, 6));
        assert_eq!(a - b, Ratio::new(1, 6));
        assert_eq!(a * b, Ratio::new(1, 6));
        assert_eq!(a / b, Ratio::new(3, 2));
        assert_eq!(-a, Ratio::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::ZERO);
        assert!(Ratio::new(7, 7) == Ratio::ONE);
    }

    #[test]
    fn recip_and_predicates() {
        assert_eq!(Ratio::new(2, 3).recip(), Ratio::new(3, 2));
        assert!(Ratio::from_int(4).is_integer());
        assert!(!Ratio::new(1, 2).is_integer());
        assert!(Ratio::ZERO.is_zero());
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
    }

    #[test]
    fn display() {
        assert_eq!(Ratio::new(3, 6).to_string(), "1/2");
        assert_eq!(Ratio::from_int(7).to_string(), "7");
    }
}
