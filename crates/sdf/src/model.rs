//! The application model: an SDF graph joined with per-actor implementation
//! metadata (paper §3).
//!
//! Beyond the graph, the model records for each actor one or more
//! *implementations*: the C function realizing the actor for a specific
//! processor type, its WCET on that processor, its instruction- and
//! data-memory footprint (kept separate for Harvard-architecture tiles), and
//! the binding of function arguments to the explicitly implemented channels.
//! Implicit channels (self-edges for state, buffer-size or ordering
//! constraints) have no argument binding. Token sizes live on the channels
//! themselves. Multiple implementations per actor enable heterogeneous
//! mapping: the binder picks the implementation matching the tile's
//! processor type.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::SdfError;
use crate::graph::{ActorId, SdfGraph};
use crate::ratio::Ratio;

/// Direction of a function argument relative to the actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArgDirection {
    /// The argument points to a buffer of input tokens.
    Input,
    /// The argument points to a buffer the actor writes output tokens into.
    Output,
}

/// Binds one function argument of an actor implementation to a channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArgBinding {
    /// Zero-based argument position in the implementation function.
    pub arg_index: usize,
    /// Name of the bound channel (must be adjacent to the actor).
    pub channel: String,
    /// Whether the argument is an input or output buffer.
    pub direction: ArgDirection,
}

/// One implementation of an actor for a given processor type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActorImplementation {
    /// Processor type this implementation runs on (e.g. `"microblaze"`).
    pub processor_type: String,
    /// Name of the C function implementing the actor.
    pub function_name: String,
    /// Worst-case execution time in cycles on this processor type.
    pub wcet: u64,
    /// Instruction-memory footprint in bytes.
    pub instruction_memory: u64,
    /// Data-memory footprint in bytes (excluding channel buffers).
    pub data_memory: u64,
    /// Explicit channel-argument bindings; implicit channels are absent.
    pub args: Vec<ArgBinding>,
}

/// A throughput constraint: at least `iterations` graph iterations per
/// `cycles` clock cycles (paper §5: throughput is defined as the long-term
/// average number of iterations per time unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThroughputConstraint {
    /// Required iterations...
    pub iterations: u64,
    /// ...per this many clock cycles.
    pub cycles: u64,
}

impl ThroughputConstraint {
    /// The constraint as an exact ratio (iterations per cycle).
    pub fn as_ratio(&self) -> Ratio {
        Ratio::new(self.iterations as i128, self.cycles as i128)
    }
}

/// The application model: graph + implementations + constraint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApplicationModel {
    graph: SdfGraph,
    /// Implementations keyed by actor name.
    implementations: HashMap<String, Vec<ActorImplementation>>,
    /// Optional minimum throughput the flow must guarantee.
    throughput_constraint: Option<ThroughputConstraint>,
}

impl ApplicationModel {
    /// Creates a model and validates it.
    ///
    /// # Errors
    ///
    /// [`SdfError::InvalidGraph`] if an actor lacks implementations, an
    /// implementation binds a channel that does not exist or is not adjacent
    /// to its actor, binds the same argument index twice, or the direction
    /// contradicts the channel orientation.
    pub fn new(
        graph: SdfGraph,
        implementations: HashMap<String, Vec<ActorImplementation>>,
        throughput_constraint: Option<ThroughputConstraint>,
    ) -> Result<ApplicationModel, SdfError> {
        for (aid, actor) in graph.actors() {
            let impls = implementations.get(actor.name()).ok_or_else(|| {
                SdfError::InvalidGraph(format!("actor `{}` has no implementation", actor.name()))
            })?;
            if impls.is_empty() {
                return Err(SdfError::InvalidGraph(format!(
                    "actor `{}` has an empty implementation list",
                    actor.name()
                )));
            }
            for im in impls {
                let mut used = std::collections::HashSet::new();
                for binding in &im.args {
                    if !used.insert(binding.arg_index) {
                        return Err(SdfError::InvalidGraph(format!(
                            "implementation `{}` binds argument {} twice",
                            im.function_name, binding.arg_index
                        )));
                    }
                    let cid = graph.channel_by_name(&binding.channel).ok_or_else(|| {
                        SdfError::InvalidGraph(format!(
                            "implementation `{}` binds unknown channel `{}`",
                            im.function_name, binding.channel
                        ))
                    })?;
                    let ch = graph.channel(cid);
                    let ok = match binding.direction {
                        ArgDirection::Input => ch.dst() == aid,
                        ArgDirection::Output => ch.src() == aid,
                    };
                    if !ok {
                        return Err(SdfError::InvalidGraph(format!(
                            "implementation `{}`: channel `{}` is not an {} of actor `{}`",
                            im.function_name,
                            binding.channel,
                            match binding.direction {
                                ArgDirection::Input => "input",
                                ArgDirection::Output => "output",
                            },
                            actor.name()
                        )));
                    }
                }
            }
        }
        Ok(ApplicationModel {
            graph,
            implementations,
            throughput_constraint,
        })
    }

    /// The application graph.
    pub fn graph(&self) -> &SdfGraph {
        &self.graph
    }

    /// The throughput constraint, if any.
    pub fn throughput_constraint(&self) -> Option<ThroughputConstraint> {
        self.throughput_constraint
    }

    /// All implementations of `actor`.
    pub fn implementations(&self, actor: ActorId) -> &[ActorImplementation] {
        &self.implementations[self.graph.actor(actor).name()]
    }

    /// The implementation of `actor` for `processor_type`, if any.
    pub fn implementation_for(
        &self,
        actor: ActorId,
        processor_type: &str,
    ) -> Option<&ActorImplementation> {
        self.implementations(actor)
            .iter()
            .find(|im| im.processor_type == processor_type)
    }

    /// WCET of `actor` on `processor_type`, if supported.
    pub fn wcet(&self, actor: ActorId, processor_type: &str) -> Option<u64> {
        self.implementation_for(actor, processor_type)
            .map(|i| i.wcet)
    }

    /// Returns a copy of the graph with each actor's execution time replaced
    /// by its WCET on the processor type chosen by `choose`.
    ///
    /// # Errors
    ///
    /// [`SdfError::InvalidGraph`] if an actor has no implementation for its
    /// chosen processor type.
    pub fn graph_with_wcet(
        &self,
        mut choose: impl FnMut(ActorId) -> String,
    ) -> Result<SdfGraph, SdfError> {
        let mut g = self.graph.clone();
        for (aid, _) in self.graph.actors() {
            let pt = choose(aid);
            let wcet = self.wcet(aid, &pt).ok_or_else(|| {
                SdfError::InvalidGraph(format!(
                    "actor `{}` has no implementation for processor type `{pt}`",
                    self.graph.actor(aid).name()
                ))
            })?;
            g.actor_mut(aid).set_execution_time(wcet);
        }
        Ok(g)
    }
}

/// Convenience builder for models where every actor has a single
/// implementation on a single processor type.
#[derive(Debug, Clone)]
pub struct HomogeneousModelBuilder {
    processor_type: String,
    implementations: HashMap<String, Vec<ActorImplementation>>,
}

impl HomogeneousModelBuilder {
    /// Starts a builder targeting `processor_type`.
    pub fn new(processor_type: impl Into<String>) -> HomogeneousModelBuilder {
        HomogeneousModelBuilder {
            processor_type: processor_type.into(),
            implementations: HashMap::new(),
        }
    }

    /// Registers an actor implementation with the given WCET and memory
    /// sizes; argument bindings are added in channel order by
    /// [`finish`](Self::finish).
    pub fn actor(
        &mut self,
        name: impl Into<String>,
        wcet: u64,
        instruction_memory: u64,
        data_memory: u64,
    ) -> &mut Self {
        let name = name.into();
        self.implementations.insert(
            name.clone(),
            vec![ActorImplementation {
                processor_type: self.processor_type.clone(),
                function_name: format!("actor_{name}"),
                wcet,
                instruction_memory,
                data_memory,
                args: Vec::new(),
            }],
        );
        self
    }

    /// Builds the model, auto-binding arguments to every non-self channel
    /// adjacent to each actor (inputs first, then outputs, in channel-id
    /// order), and overriding each actor's graph execution time with the
    /// implementation WCET.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`ApplicationModel::new`].
    pub fn finish(
        mut self,
        graph: SdfGraph,
        constraint: Option<ThroughputConstraint>,
    ) -> Result<ApplicationModel, SdfError> {
        for (aid, actor) in graph.actors() {
            if let Some(impls) = self.implementations.get_mut(actor.name()) {
                let im = &mut impls[0];
                let mut arg = 0usize;
                for &cid in graph.incoming(aid) {
                    let ch = graph.channel(cid);
                    if ch.is_self_edge() {
                        continue;
                    }
                    im.args.push(ArgBinding {
                        arg_index: arg,
                        channel: ch.name().to_string(),
                        direction: ArgDirection::Input,
                    });
                    arg += 1;
                }
                for &cid in graph.outgoing(aid) {
                    let ch = graph.channel(cid);
                    if ch.is_self_edge() {
                        continue;
                    }
                    im.args.push(ArgBinding {
                        arg_index: arg,
                        channel: ch.name().to_string(),
                        direction: ArgDirection::Output,
                    });
                    arg += 1;
                }
            }
        }
        let mut graph = graph;
        for (aid, _) in graph.clone().actors() {
            let name = graph.actor(aid).name().to_string();
            if let Some(impls) = self.implementations.get(&name) {
                graph.actor_mut(aid).set_execution_time(impls[0].wcet);
            }
        }
        ApplicationModel::new(graph, self.implementations, constraint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SdfGraphBuilder;

    fn simple_graph() -> SdfGraph {
        let mut b = SdfGraphBuilder::new("g");
        let a = b.add_actor("A", 1);
        let c = b.add_actor("B", 1);
        b.add_channel("e", a, 1, c, 1);
        b.add_channel_with_tokens("sa", a, 1, a, 1, 1);
        b.build().unwrap()
    }

    #[test]
    fn homogeneous_builder_binds_args() {
        let g = simple_graph();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("A", 10, 1024, 64).actor("B", 20, 2048, 128);
        let m = mb.finish(g, None).unwrap();
        let a = m.graph().actor_by_name("A").unwrap();
        let im = m.implementation_for(a, "microblaze").unwrap();
        // Self-edge excluded: only the output arg to `e`.
        assert_eq!(im.args.len(), 1);
        assert_eq!(im.args[0].direction, ArgDirection::Output);
        assert_eq!(im.args[0].channel, "e");
        // WCET overrides the graph execution time.
        assert_eq!(m.graph().actor(a).execution_time(), 10);
    }

    #[test]
    fn missing_implementation_rejected() {
        let g = simple_graph();
        let mut mb = HomogeneousModelBuilder::new("microblaze");
        mb.actor("A", 10, 1024, 64);
        assert!(mb.finish(g, None).is_err());
    }

    #[test]
    fn wrong_direction_rejected() {
        let g = simple_graph();
        let mut impls = HashMap::new();
        impls.insert(
            "A".to_string(),
            vec![ActorImplementation {
                processor_type: "mb".into(),
                function_name: "actor_A".into(),
                wcet: 1,
                instruction_memory: 0,
                data_memory: 0,
                args: vec![ArgBinding {
                    arg_index: 0,
                    channel: "e".into(),
                    direction: ArgDirection::Input, // wrong: A produces e
                }],
            }],
        );
        impls.insert(
            "B".to_string(),
            vec![ActorImplementation {
                processor_type: "mb".into(),
                function_name: "actor_B".into(),
                wcet: 1,
                instruction_memory: 0,
                data_memory: 0,
                args: vec![],
            }],
        );
        assert!(ApplicationModel::new(g, impls, None).is_err());
    }

    #[test]
    fn duplicate_arg_index_rejected() {
        let g = simple_graph();
        let mut impls = HashMap::new();
        impls.insert(
            "A".to_string(),
            vec![ActorImplementation {
                processor_type: "mb".into(),
                function_name: "actor_A".into(),
                wcet: 1,
                instruction_memory: 0,
                data_memory: 0,
                args: vec![
                    ArgBinding {
                        arg_index: 0,
                        channel: "e".into(),
                        direction: ArgDirection::Output,
                    },
                    ArgBinding {
                        arg_index: 0,
                        channel: "sa".into(),
                        direction: ArgDirection::Output,
                    },
                ],
            }],
        );
        impls.insert(
            "B".to_string(),
            vec![ActorImplementation {
                processor_type: "mb".into(),
                function_name: "actor_B".into(),
                wcet: 1,
                instruction_memory: 0,
                data_memory: 0,
                args: vec![],
            }],
        );
        assert!(ApplicationModel::new(g, impls, None).is_err());
    }

    #[test]
    fn heterogeneous_wcet_selection() {
        let g = simple_graph();
        let mut impls = HashMap::new();
        for (name, mb_wcet, acc_wcet) in [("A", 10, 2), ("B", 20, 5)] {
            impls.insert(
                name.to_string(),
                vec![
                    ActorImplementation {
                        processor_type: "microblaze".into(),
                        function_name: format!("actor_{name}"),
                        wcet: mb_wcet,
                        instruction_memory: 0,
                        data_memory: 0,
                        args: vec![],
                    },
                    ActorImplementation {
                        processor_type: "accelerator".into(),
                        function_name: format!("actor_{name}_hw"),
                        wcet: acc_wcet,
                        instruction_memory: 0,
                        data_memory: 0,
                        args: vec![],
                    },
                ],
            );
        }
        let m = ApplicationModel::new(g, impls, None).unwrap();
        let a = m.graph().actor_by_name("A").unwrap();
        assert_eq!(m.wcet(a, "microblaze"), Some(10));
        assert_eq!(m.wcet(a, "accelerator"), Some(2));
        assert_eq!(m.wcet(a, "dsp"), None);
        let gw = m.graph_with_wcet(|_| "accelerator".to_string()).unwrap();
        assert_eq!(gw.actor(a).execution_time(), 2);
    }

    #[test]
    fn constraint_ratio() {
        let c = ThroughputConstraint {
            iterations: 1,
            cycles: 2000,
        };
        assert_eq!(c.as_ratio(), Ratio::new(1, 2000));
    }
}
