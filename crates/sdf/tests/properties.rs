//! Property-based tests for the SDF analyses.
//!
//! The central property: the state-space throughput analysis and the exact
//! HSDF max-cycle-ratio analysis agree on every live, consistent graph.
//! Randomized rings with multirate channels are generated from a repetition
//! vector, so consistency holds by construction.

use proptest::prelude::*;

use mamps_sdf::graph::{SdfGraph, SdfGraphBuilder};
use mamps_sdf::liveness::check_liveness;
use mamps_sdf::mcr::mcr_throughput;
use mamps_sdf::ratio::gcd;
use mamps_sdf::repetition::repetition_vector;
use mamps_sdf::state_space::{throughput, AnalysisOptions};
use mamps_sdf::transform::with_buffer_capacities;

/// Builds a consistent ring of `q.len()` actors: the channel from actor `i`
/// to `i+1` gets rates derived from the chosen repetition entries, so the
/// graph is consistent by construction. `tokens[i]` seeds channel `i`.
fn ring_graph(q: &[u64], exec: &[u64], tokens: &[u64]) -> SdfGraph {
    let n = q.len();
    let mut b = SdfGraphBuilder::new("ring");
    let ids: Vec<_> = (0..n)
        .map(|i| b.add_actor(format!("a{i}"), exec[i]))
        .collect();
    for i in 0..n {
        let j = (i + 1) % n;
        let g = gcd(q[i], q[j]);
        let p = q[j] / g;
        let c = q[i] / g;
        b.add_channel_with_tokens(format!("e{i}"), ids[i], p, ids[j], c, tokens[i]);
    }
    b.build().expect("ring construction is valid")
}

fn ring_strategy() -> impl Strategy<Value = (Vec<u64>, Vec<u64>, Vec<u64>)> {
    (2usize..5).prop_flat_map(|n| {
        (
            proptest::collection::vec(1u64..5, n),
            proptest::collection::vec(0u64..12, n),
            proptest::collection::vec(0u64..8, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn repetition_vector_balances_every_channel(
        (q, exec, tokens) in ring_strategy()
    ) {
        let g = ring_graph(&q, &exec, &tokens);
        let rv = repetition_vector(&g).unwrap();
        for (_, ch) in g.channels() {
            prop_assert_eq!(
                rv.of(ch.src()) * ch.production_rate(),
                rv.of(ch.dst()) * ch.consumption_rate()
            );
        }
        // Minimality: entries have gcd 1.
        let g0 = rv.entries().iter().copied().fold(0, gcd);
        prop_assert_eq!(g0, 1);
    }

    #[test]
    fn state_space_equals_mcr_on_live_rings(
        (q, exec, tokens) in ring_strategy()
    ) {
        let g = ring_graph(&q, &exec, &tokens);
        prop_assume!(check_liveness(&g).is_ok());
        prop_assume!(exec.iter().any(|&e| e > 0));
        let ss = throughput(&g, &AnalysisOptions::default());
        let mc = mcr_throughput(&g);
        match (ss, mc) {
            (Ok(s), Ok(m)) => prop_assert_eq!(s.iterations_per_cycle, m),
            // Both may legitimately report unbounded/limit cases, but they
            // must agree on whether a bound exists.
            (Err(_), Err(_)) => {}
            (s, m) => prop_assert!(false, "disagreement: {s:?} vs {m:?}"),
        }
    }

    /// The optimized worklist kernel must return the *identical*
    /// `ThroughputResult` — throughput, transient, period, even the state
    /// count — as the retained naive reference, in both auto-concurrency
    /// modes, on randomized live multirate graphs.
    #[test]
    fn fast_kernel_equals_reference_on_live_rings(
        (q, exec, tokens) in ring_strategy(),
        auto in any::<bool>(),
    ) {
        let g = ring_graph(&q, &exec, &tokens);
        let opts = AnalysisOptions { auto_concurrency: auto, ..AnalysisOptions::default() };
        match (throughput(&g, &opts), mamps_sdf::state_space::reference::throughput(&g, &opts)) {
            (Ok(fast), Ok(slow)) => prop_assert_eq!(fast, slow),
            (Err(_), Err(_)) => {}
            (f, s) => prop_assert!(false, "fast/reference disagree: {f:?} vs {s:?}"),
        }
    }

    /// The materialization-free bounded analysis must match analysing the
    /// reverse-channel graph built by `with_buffer_capacities`, for both
    /// the fast kernel and the reference.
    #[test]
    fn bounded_fast_path_equals_materialized_bounded_graph(
        (q, exec, tokens) in ring_strategy(),
        extra_cap in 0u64..6,
    ) {
        let g = ring_graph(&q, &exec, &tokens);
        prop_assume!(exec.iter().any(|&e| e > 0));
        let caps: Vec<u64> = g
            .channels()
            .map(|(id, _)| mamps_sdf::buffer::capacity_lower_bound(&g, id) + extra_cap)
            .collect();
        let opts = AnalysisOptions::default();
        let fast = mamps_sdf::state_space::throughput_bounded(&g, &caps, &opts);
        let bounded_graph = with_buffer_capacities(&g, &caps).unwrap();
        let slow = mamps_sdf::state_space::reference::throughput(&bounded_graph, &opts);
        match (fast, slow) {
            (Ok(f), Ok(s)) => prop_assert_eq!(f, s),
            (Err(_), Err(_)) => {}
            (f, s) => prop_assert!(false, "bounded fast/reference disagree: {f:?} vs {s:?}"),
        }
    }

    /// Greedy sizing through the memoizing cache with parallel candidate
    /// evaluation is identical to the plain sequential search.
    #[test]
    fn cached_parallel_sizing_equals_sequential(
        (q, exec, tokens) in ring_strategy(),
        denom in 20u64..200,
    ) {
        let g = ring_graph(&q, &exec, &tokens);
        prop_assume!(check_liveness(&g).is_ok());
        prop_assume!(exec.iter().any(|&e| e > 0));
        let opts = AnalysisOptions::default();
        let target = mamps_sdf::ratio::Ratio::new(1, denom as i128);
        let seq = mamps_sdf::buffer::size_for_throughput(&g, target, &opts);
        let par = mamps_sdf::buffer::size_for_throughput_with(
            &g,
            target,
            &opts,
            &mut mamps_sdf::buffer::AnalysisCache::new(),
            4,
        );
        match (seq, par) {
            (Ok(s), Ok(p)) => prop_assert_eq!(s, p),
            (Err(_), Err(_)) => {}
            (s, p) => prop_assert!(false, "sequential/parallel sizing disagree: {s:?} vs {p:?}"),
        }
    }

    #[test]
    fn adding_tokens_never_decreases_throughput(
        (q, exec, mut tokens) in ring_strategy(),
        extra in 1u64..5,
        which in 0usize..4,
    ) {
        prop_assume!(exec.iter().any(|&e| e > 0));
        let g1 = ring_graph(&q, &exec, &tokens);
        prop_assume!(check_liveness(&g1).is_ok());
        let t1 = throughput(&g1, &AnalysisOptions::default()).unwrap();
        let idx = which % tokens.len();
        tokens[idx] += extra;
        let g2 = ring_graph(&q, &exec, &tokens);
        let t2 = throughput(&g2, &AnalysisOptions::default()).unwrap();
        prop_assert!(t2.iterations_per_cycle >= t1.iterations_per_cycle);
    }

    #[test]
    fn buffer_capacity_bounds_unbounded_throughput(
        (q, exec, tokens) in ring_strategy(),
        extra_cap in 0u64..6,
    ) {
        prop_assume!(exec.iter().any(|&e| e > 0));
        let g = ring_graph(&q, &exec, &tokens);
        prop_assume!(check_liveness(&g).is_ok());
        let unbounded = throughput(&g, &AnalysisOptions::default()).unwrap();
        let caps: Vec<u64> = g
            .channels()
            .map(|(id, _)| mamps_sdf::buffer::capacity_lower_bound(&g, id) + extra_cap)
            .collect();
        let bounded_graph = with_buffer_capacities(&g, &caps).unwrap();
        if check_liveness(&bounded_graph).is_ok() {
            let bounded = throughput(&bounded_graph, &AnalysisOptions::default()).unwrap();
            prop_assert!(bounded.iterations_per_cycle <= unbounded.iterations_per_cycle);
        }
    }

    #[test]
    fn hsdf_expansion_counts_and_rates(
        (q, exec, tokens) in ring_strategy()
    ) {
        let g = ring_graph(&q, &exec, &tokens);
        let rv = repetition_vector(&g).unwrap();
        let h = mamps_sdf::hsdf::to_hsdf(&g).unwrap();
        prop_assert_eq!(h.graph().actor_count() as u64, rv.total_firings());
        for (_, ch) in h.graph().channels() {
            prop_assert_eq!(ch.production_rate(), 1);
            prop_assert_eq!(ch.consumption_rate(), 1);
        }
        // Token conservation: HSDF initial tokens, weighted once per edge,
        // cannot exceed the original channel tokens by more than the rate
        // rounding bound; at minimum the totals agree when all rates are 1.
        if g.channels().all(|(_, c)| c.production_rate() == 1 && c.consumption_rate() == 1) {
            let orig: u64 = g.channels().map(|(_, c)| c.initial_tokens()).sum();
            let hs: u64 = h.graph().channels().map(|(_, c)| c.initial_tokens()).sum();
            prop_assert_eq!(orig, hs);
        }
    }

    #[test]
    fn minimal_live_capacities_are_live(
        (q, exec, tokens) in ring_strategy()
    ) {
        let g = ring_graph(&q, &exec, &tokens);
        prop_assume!(check_liveness(&g).is_ok());
        let caps = mamps_sdf::buffer::minimal_live_capacities(&g).unwrap();
        let bounded = with_buffer_capacities(&g, &caps).unwrap();
        prop_assert!(check_liveness(&bounded).is_ok());
    }
}
