//! Property tests for the XML interchange: arbitrary valid application
//! models survive a serialize/parse round trip unchanged.

use proptest::prelude::*;

use mamps_sdf::graph::SdfGraphBuilder;
use mamps_sdf::model::{
    ActorImplementation, ApplicationModel, ArgBinding, ArgDirection, ThroughputConstraint,
};
use mamps_sdf::xml::{application_from_xml, application_to_xml};

fn arbitrary_app() -> impl Strategy<Value = ApplicationModel> {
    (
        2usize..6,                                                               // actors
        proptest::collection::vec((1u64..8, 1u64..8, 0u64..5, 1u64..200), 1..8), // channels
        proptest::collection::vec(1u64..10_000, 6),                              // wcets
        proptest::option::of((1u64..10, 100u64..1_000_000)),
    )
        .prop_map(|(n, chans, wcets, constraint)| {
            let mut b = SdfGraphBuilder::new("prop");
            let ids: Vec<_> = (0..n).map(|i| b.add_actor(format!("a{i}"), 1)).collect();
            // A consistent backbone: unit-rate ring so arbitrary extra
            // channels cannot break consistency if they follow it.
            for i in 0..n {
                b.add_channel_with_tokens(format!("ring{i}"), ids[i], 1, ids[(i + 1) % n], 1, 1);
            }
            for (k, (src, dst, tokens, size)) in chans.into_iter().enumerate() {
                let s = (src as usize) % n;
                let d = (dst as usize) % n;
                b.add_channel_full(format!("x{k}"), ids[s], 1, ids[d], 1, tokens, size);
            }
            let graph = b.build().unwrap();
            let mut impls = std::collections::HashMap::new();
            for (aid, actor) in graph.actors() {
                let mut args = Vec::new();
                let mut idx = 0;
                for &cid in graph.incoming(aid) {
                    let ch = graph.channel(cid);
                    if ch.is_self_edge() {
                        continue;
                    }
                    args.push(ArgBinding {
                        arg_index: idx,
                        channel: ch.name().to_string(),
                        direction: ArgDirection::Input,
                    });
                    idx += 1;
                }
                impls.insert(
                    actor.name().to_string(),
                    vec![ActorImplementation {
                        processor_type: "microblaze".into(),
                        function_name: format!("f_{}", actor.name()),
                        wcet: wcets[aid.0 % wcets.len()],
                        instruction_memory: 1024,
                        data_memory: 64,
                        args,
                    }],
                );
            }
            let constraint =
                constraint.map(|(iterations, cycles)| ThroughputConstraint { iterations, cycles });
            ApplicationModel::new(graph, impls, constraint).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xml_roundtrip_is_lossless(app in arbitrary_app()) {
        let xml = application_to_xml(&app);
        let back = application_from_xml(&xml).unwrap();
        let (g1, g2) = (app.graph(), back.graph());
        prop_assert_eq!(g1.name(), g2.name());
        prop_assert_eq!(g1.actor_count(), g2.actor_count());
        prop_assert_eq!(g1.channel_count(), g2.channel_count());
        for (aid, a1) in g1.actors() {
            let a2id = g2.actor_by_name(a1.name()).unwrap();
            prop_assert_eq!(
                a1.execution_time(),
                g2.actor(a2id).execution_time()
            );
            prop_assert_eq!(
                app.implementations(aid),
                back.implementations(a2id)
            );
        }
        for (_, c1) in g1.channels() {
            let c2 = g2.channel(g2.channel_by_name(c1.name()).unwrap());
            prop_assert_eq!(c1.production_rate(), c2.production_rate());
            prop_assert_eq!(c1.consumption_rate(), c2.consumption_rate());
            prop_assert_eq!(c1.initial_tokens(), c2.initial_tokens());
            prop_assert_eq!(c1.token_size(), c2.token_size());
        }
        prop_assert_eq!(app.throughput_constraint(), back.throughput_constraint());
        // Serialization is canonical: a second trip is byte-identical.
        prop_assert_eq!(application_to_xml(&back), xml);
    }
}
