//! Property tests for the XML interchange: generated application models
//! (every topology family, multirate channels, self-edges, optional
//! throughput constraints — the shared `gen::strategies` testkit) survive
//! a serialize/parse round trip unchanged.

use proptest::prelude::*;

use mamps_sdf::gen::strategies;
use mamps_sdf::xml::{application_from_xml, application_to_xml};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xml_roundtrip_is_lossless(app in strategies::application()) {
        let xml = application_to_xml(&app);
        let back = application_from_xml(&xml).unwrap();
        let (g1, g2) = (app.graph(), back.graph());
        prop_assert_eq!(g1.name(), g2.name());
        prop_assert_eq!(g1.actor_count(), g2.actor_count());
        prop_assert_eq!(g1.channel_count(), g2.channel_count());
        for (aid, a1) in g1.actors() {
            let a2id = g2.actor_by_name(a1.name()).unwrap();
            prop_assert_eq!(
                a1.execution_time(),
                g2.actor(a2id).execution_time()
            );
            prop_assert_eq!(
                app.implementations(aid),
                back.implementations(a2id)
            );
        }
        for (_, c1) in g1.channels() {
            let c2 = g2.channel(g2.channel_by_name(c1.name()).unwrap());
            prop_assert_eq!(c1.production_rate(), c2.production_rate());
            prop_assert_eq!(c1.consumption_rate(), c2.consumption_rate());
            prop_assert_eq!(c1.initial_tokens(), c2.initial_tokens());
            prop_assert_eq!(c1.token_size(), c2.token_size());
        }
        prop_assert_eq!(app.throughput_constraint(), back.throughput_constraint());
        // Serialization is canonical: a second trip is byte-identical.
        prop_assert_eq!(application_to_xml(&back), xml);
    }
}
