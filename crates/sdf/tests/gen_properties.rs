//! Invariants of the seeded scenario generator, as properties over the
//! whole configuration space the testkit strategies can draw:
//!
//! * determinism — the same `GenConfig` generates byte-identical XML, and
//!   nearby seeds diverge (the stream is actually seeded);
//! * consistency & liveness by construction — every generated graph has a
//!   repetition vector, balanced channel rates, and a deadlock-free
//!   single-iteration schedule;
//! * structure — generated graphs are connected, respect the configured
//!   actor count, and their channels stay within the drawn rate bounds;
//! * interchange — every scenario survives the XML round trip unchanged.

use proptest::prelude::*;

use mamps_sdf::gen::{generate, strategies, Family, GenConfig};
use mamps_sdf::liveness::check_liveness;
use mamps_sdf::repetition::repetition_vector;
use mamps_sdf::xml::{application_from_xml, application_to_xml};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn same_config_same_bytes_nearby_seed_differs(cfg in strategies::config()) {
        let a = application_to_xml(&generate(&cfg).unwrap());
        let b = application_to_xml(&generate(&cfg).unwrap());
        prop_assert_eq!(&a, &b, "generation is not deterministic");
        let other = GenConfig {
            seed: cfg.seed.wrapping_add(1),
            ..cfg.clone()
        };
        let c = application_to_xml(&generate(&other).unwrap());
        prop_assert!(a != c, "seed does not influence the scenario");
    }

    #[test]
    fn generated_graphs_are_consistent_live_and_connected(
        cfg in strategies::config()
    ) {
        let app = generate(&cfg).unwrap();
        let g = app.graph();
        prop_assert_eq!(g.actor_count(), cfg.actors);

        // Consistency: the repetition vector exists and balances every
        // channel; rates stay within the configured bound.
        let q = repetition_vector(g).unwrap();
        for (_, ch) in g.channels() {
            prop_assert_eq!(
                q.of(ch.src()) * ch.production_rate(),
                q.of(ch.dst()) * ch.consumption_rate(),
                "channel {} unbalanced", ch.name()
            );
            prop_assert!(ch.production_rate() >= 1);
            prop_assert!(ch.consumption_rate() >= 1);
            prop_assert!(ch.production_rate() <= cfg.max_rate);
            prop_assert!(ch.consumption_rate() <= cfg.max_rate);
        }
        for (_, a) in g.actors() {
            let w = a.execution_time();
            prop_assert!(w >= cfg.wcet_min && w <= cfg.wcet_max);
        }

        // Liveness: one full iteration schedules without deadlock.
        let order = check_liveness(g).unwrap();
        prop_assert_eq!(order.firings().len() as u64, q.total_firings());

        // Connectivity: union-find over channel endpoints collapses to a
        // single component (self-edges cannot connect anything new).
        let mut root: Vec<usize> = (0..g.actor_count()).collect();
        fn find(root: &mut [usize], mut x: usize) -> usize {
            while root[x] != x {
                root[x] = root[root[x]];
                x = root[x];
            }
            x
        }
        for (_, ch) in g.channels() {
            let (a, b) = (find(&mut root, ch.src().0), find(&mut root, ch.dst().0));
            root[a] = b;
        }
        let first = find(&mut root, 0);
        for i in 1..g.actor_count() {
            prop_assert_eq!(
                find(&mut root, i), first,
                "actor {} is disconnected", i
            );
        }
    }

    #[test]
    fn every_generated_scenario_round_trips(cfg in strategies::config()) {
        let app = generate(&cfg).unwrap();
        let xml = application_to_xml(&app);
        let back = application_from_xml(&xml).unwrap();
        prop_assert_eq!(application_to_xml(&back), xml);
    }
}

/// Dense deterministic sweep across all families × seeds: cheaper than a
/// proptest for pinning the "every family, every seed round-trips and
/// analyzes" acceptance criterion.
#[test]
fn family_seed_sweep_round_trips_and_analyzes() {
    for family in Family::ALL {
        for seed in 0..25u64 {
            let cfg = GenConfig {
                actors: 2 + (seed as usize % 6),
                self_edge: seed % 4 == 0,
                constraint_slack: if seed % 2 == 0 {
                    Some(2 + seed % 4)
                } else {
                    None
                },
                ..GenConfig::new(seed, family)
            };
            let app = generate(&cfg).unwrap();
            let xml = application_to_xml(&app);
            let back = application_from_xml(&xml).unwrap();
            assert_eq!(
                application_to_xml(&back),
                xml,
                "{family} seed {seed} does not round-trip"
            );
            repetition_vector(app.graph()).unwrap();
            check_liveness(app.graph()).unwrap();
        }
    }
}
